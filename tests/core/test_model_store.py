"""Whole-model compressed archives: round trips, footprint, errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import CodecError, IntegrityError
from repro.core.model_store import FORMAT_VERSION, compress_model, load_archive
from repro.datasets import train_test
from repro.nn import TrainConfig, evaluate, train
from repro.nn.zoo import lenet5
from repro.resilience import BitFlipInjector


@pytest.fixture(scope="module")
def trained():
    split = train_test("digits", 1500, 300, seed=21)
    model = lenet5.proxy(np.random.default_rng(21))
    train(model, split.x_train, split.y_train, TrainConfig(epochs=5, lr=0.05))
    return model, split


class TestCompressModel:
    def test_partition_of_layers(self, trained):
        model, _ = trained
        archive = compress_model(model, {"dense_1": 10.0})
        assert set(archive.compressed) == {"dense_1"}
        assert set(archive.raw) == {"conv2d_1", "conv2d_2", "dense_2", "dense_3"}

    def test_footprint_smaller_than_raw(self, trained):
        model, _ = trained
        plain = compress_model(model, {})
        squeezed = compress_model(model, {"dense_1": 15.0})
        assert squeezed.weights_footprint() < plain.weights_footprint()

    def test_unknown_layer_rejected(self, trained):
        model, _ = trained
        with pytest.raises(ValueError, match="unknown layers"):
            compress_model(model, {"nope": 5.0})

    def test_state_rides_along(self, trained):
        model, _ = trained
        archive = compress_model(model, {"dense_1": 5.0})
        # biases are state (param1 of dense layers)
        assert any(k.endswith("param1") for k in archive.state)


class TestApplyAndRoundTrip:
    def test_apply_reproduces_compressed_inference(self, trained):
        model, split = trained
        archive = compress_model(model, {"dense_1": 10.0})
        fresh = lenet5.proxy(np.random.default_rng(99))
        archive.apply(fresh)
        # the fresh model behaves like the compressed original
        from repro.core.pipeline import apply_compression

        stream, original = apply_compression(model, "dense_1", 10.0)
        np.testing.assert_allclose(
            fresh.predict(split.x_test[:64]),
            model.predict(split.x_test[:64]),
            rtol=1e-5,
        )
        model.set_weights("dense_1", original)

    def test_file_roundtrip(self, trained, tmp_path):
        model, split = trained
        archive = compress_model(model, {"dense_1": 10.0, "dense_2": 15.0})
        path = tmp_path / "model.npz"
        archive.to_file(path)
        loaded = load_archive(path)
        assert loaded.assignments == archive.assignments
        assert set(loaded.compressed) == set(archive.compressed)

        a, b = lenet5.proxy(np.random.default_rng(1)), lenet5.proxy(
            np.random.default_rng(2)
        )
        archive.apply(a)
        loaded.apply(b)
        np.testing.assert_allclose(
            a.predict(split.x_test[:32]), b.predict(split.x_test[:32]), rtol=1e-6
        )

    def test_applied_model_accuracy_reasonable(self, trained):
        model, split = trained
        base = evaluate(model, split.x_test, split.y_test).top1
        archive = compress_model(model, {"dense_1": 10.0})
        fresh = lenet5.proxy(np.random.default_rng(3))
        archive.apply(fresh)
        acc = evaluate(fresh, split.x_test, split.y_test).top1
        assert acc > base - 0.10

    def test_unknown_state_key_rejected(self, trained):
        model, _ = trained
        archive = compress_model(model, {})
        archive.state["bogus.key"] = np.zeros(3, dtype=np.float32)
        fresh = lenet5.proxy(np.random.default_rng(4))
        with pytest.raises(ValueError, match="unknown to model"):
            archive.apply(fresh)


def _corrupt_layer(archive, name, seed=5, ber=1e-3):
    payload, shape = archive.compressed[name]
    damaged = BitFlipInjector(seed, ber).corrupt_bytes(payload)
    assert damaged != payload
    archive.compressed[name] = (damaged, shape)
    return archive


class TestIntegrityAndDegradation:
    def test_archive_records_format_version_and_checksums(self, trained, tmp_path):
        model, _ = trained
        archive = compress_model(model, {"dense_1": 10.0})
        path = tmp_path / "m.npz"
        archive.to_file(path)
        loaded = load_archive(path)
        assert loaded.version == FORMAT_VERSION
        assert "crc32" in loaded.codecs["dense_1"]["meta"]

    def test_corrupted_payload_raises_by_default(self, trained):
        model, _ = trained
        archive = _corrupt_layer(compress_model(model, {"dense_1": 10.0}), "dense_1")
        fresh = lenet5.proxy(np.random.default_rng(6))
        with pytest.raises(CodecError):
            archive.apply(fresh)

    def test_zero_policy_reports_and_completes(self, trained):
        model, split = trained
        archive = _corrupt_layer(compress_model(model, {"dense_1": 10.0}), "dense_1")
        fresh = lenet5.proxy(np.random.default_rng(7))
        report = archive.apply(fresh, on_fault="zero")
        assert set(report) == {"dense_1"}
        assert "zero-fill" in report["dense_1"]
        # the model still runs end to end
        fresh.predict(split.x_test[:8])

    def test_raw_policy_restores_exact_weights(self, trained):
        model, _ = trained
        archive = _corrupt_layer(
            compress_model(model, {"dense_1": 10.0}, raw_fallback=True), "dense_1"
        )
        fresh = lenet5.proxy(np.random.default_rng(8))
        report = archive.apply(fresh, on_fault="raw")
        assert report == {"dense_1": "raw-fallback"}
        np.testing.assert_array_equal(
            fresh.get_weights("dense_1"), model.get_weights("dense_1")
        )

    def test_raw_policy_without_fallback_raises(self, trained):
        model, _ = trained
        archive = _corrupt_layer(compress_model(model, {"dense_1": 10.0}), "dense_1")
        fresh = lenet5.proxy(np.random.default_rng(9))
        with pytest.raises(IntegrityError, match="no raw fallback"):
            archive.apply(fresh, on_fault="raw")

    def test_clean_archive_reports_nothing(self, trained):
        model, _ = trained
        archive = compress_model(model, {"dense_1": 10.0})
        fresh = lenet5.proxy(np.random.default_rng(10))
        assert archive.apply(fresh, on_fault="zero") == {}

    def test_unknown_policy_rejected(self, trained):
        model, _ = trained
        archive = compress_model(model, {"dense_1": 10.0})
        fresh = lenet5.proxy(np.random.default_rng(11))
        with pytest.raises(ValueError, match="degradation policy"):
            archive.apply(fresh, on_fault="retry")

    def test_fallback_excluded_from_footprint(self, trained):
        model, _ = trained
        lean = compress_model(model, {"dense_1": 10.0})
        padded = compress_model(model, {"dense_1": 10.0}, raw_fallback=True)
        assert lean.weights_footprint() == padded.weights_footprint()

    def test_legacy_v1_archive_still_loads_and_applies(self, trained, tmp_path):
        """An archive written before the format bump (no meta.format, no
        payload CRCs, v2 wire payloads) loads and applies unchanged."""
        model, split = trained
        archive = compress_model(model, {"dense_1": 10.0})
        # strip everything format-2: rebuild payloads as legacy v2 wire
        # messages with no codec specs (the pre-registry layout)
        from repro.core import codec as wire
        from repro.core.compression import compress
        from repro.core.segmentation import delta_from_percent

        w = model.get_weights("dense_1").ravel().astype(np.float64)
        stream = compress(w, delta_from_percent(w, 10.0))
        archive.compressed["dense_1"] = (
            wire.encode_legacy(stream),
            model.get_weights("dense_1").shape,
        )
        archive.codecs = {}
        archive.version = 1
        path = tmp_path / "legacy.npz"
        archive.to_file(path)
        # forge the pre-format-version file layout: drop meta.format
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "meta.format"}
        np.savez_compressed(path, **arrays)

        loaded = load_archive(path)
        assert loaded.version == 1
        assert loaded.codecs == {}
        fresh = lenet5.proxy(np.random.default_rng(12))
        assert loaded.apply(fresh) == {}
        fresh.predict(split.x_test[:8])
