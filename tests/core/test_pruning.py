"""Magnitude pruning and its composition with the compressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress_percent
from repro.core.pruning import prune_magnitude, pruned_footprint_bytes


class TestPruneMagnitude:
    def test_sparsity_achieved(self, rng):
        w = rng.normal(size=10_000).astype(np.float32)
        pt = prune_magnitude(w, 0.7)
        assert pt.sparsity == pytest.approx(0.7, abs=0.001)
        assert (pt.values == 0).mean() == pytest.approx(0.7, abs=0.001)

    def test_keeps_largest(self, rng):
        w = rng.normal(size=1000).astype(np.float32)
        pt = prune_magnitude(w, 0.5)
        kept_min = np.abs(pt.values[pt.mask]).min()
        dropped_max = np.abs(w[~pt.mask]).max()
        assert kept_min >= dropped_max - 1e-7

    def test_zero_sparsity_identity(self, rng):
        w = rng.normal(size=100).astype(np.float32)
        pt = prune_magnitude(w, 0.0)
        np.testing.assert_array_equal(pt.values, w)

    def test_shape_preserved(self, rng):
        w = rng.normal(size=(20, 30)).astype(np.float32)
        assert prune_magnitude(w, 0.3).values.shape == (20, 30)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            prune_magnitude(rng.normal(size=10), 1.0)

    def test_ties_handled_exactly(self):
        w = np.ones(100, dtype=np.float32)
        pt = prune_magnitude(w, 0.4)
        assert pt.num_kept == 60

    @given(
        sparsity=st.floats(0.0, 0.95),
        n=st.integers(10, 2000),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=80, deadline=None)
    def test_sparsity_property(self, sparsity, n, seed):
        w = np.random.default_rng(seed).normal(size=n).astype(np.float32)
        pt = prune_magnitude(w, sparsity)
        assert abs(pt.sparsity - sparsity) <= 1.0 / n + 1e-9


class TestFootprint:
    def test_dense_case(self, rng):
        w = rng.normal(size=800).astype(np.float32)
        pt = prune_magnitude(w, 0.0)
        assert pruned_footprint_bytes(pt) == 100 + 800 * 4

    def test_sparse_saves(self, rng):
        w = rng.normal(size=8000).astype(np.float32)
        dense = pruned_footprint_bytes(prune_magnitude(w, 0.0))
        sparse = pruned_footprint_bytes(prune_magnitude(w, 0.8))
        assert sparse < 0.3 * dense


class TestStackingWithCompression:
    """The paper's claim: compression applies on top of pruning —
    the zero runs pruning creates are ideal monotonic segments."""

    def test_pruned_stream_compresses_better(self, rng):
        w = rng.normal(size=100_000).astype(np.float32)
        base_cr = compress_percent(w, 5.0).compression_ratio
        pruned = prune_magnitude(w, 0.8).values
        pruned_cr = compress_percent(pruned, 5.0).compression_ratio
        assert pruned_cr > 2 * base_cr

    def test_stacked_beats_bitmap_at_moderate_delta(self, rng):
        """At delta ~20% the compressed pruned stream undercuts even the
        dedicated sparse bitmap format; at tiny delta the bitmap wins
        (the compressor still pays per-segment cost inside the noise)."""
        w = rng.normal(size=100_000).astype(np.float32)
        pt = prune_magnitude(w, 0.8)
        bitmap_bytes = pruned_footprint_bytes(pt)
        assert compress_percent(pt.values, 20.0).compressed_bytes < bitmap_bytes
        assert compress_percent(pt.values, 2.0).compressed_bytes > bitmap_bytes

    def test_compression_preserves_pruned_zero_runs_approximately(self, rng):
        w = rng.normal(size=20_000).astype(np.float32)
        pt = prune_magnitude(w, 0.9)
        stream = compress_percent(pt.values, 2.0)
        approx = stream.decompress()
        zero_err = np.abs(approx[~pt.mask.ravel()])
        # pruned positions stay near zero after lossy reconstruction
        assert zero_err.mean() < 0.05 * np.abs(w).max()
