"""Fig. 8 pipeline and sensitivity analysis on a small trained model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import CompressionPipeline, apply_compression
from repro.core.sensitivity import layer_sensitivity, normalized_sensitivity
from repro.datasets import train_test
from repro.nn import TrainConfig, train
from repro.nn.zoo import lenet5


@pytest.fixture(scope="module")
def trained_lenet():
    split = train_test("digits", 2500, 500, seed=7)
    model = lenet5.proxy(np.random.default_rng(7))
    train(model, split.x_train, split.y_train, TrainConfig(epochs=6, lr=0.05))
    return model, split


class TestApplyCompression:
    def test_layer_replaced_and_restorable(self, trained_lenet):
        model, _ = trained_lenet
        before = model.get_weights("dense_1").copy()
        stream, original = apply_compression(model, "dense_1", 10.0)
        after = model.get_weights("dense_1")
        assert not np.array_equal(after, before)
        np.testing.assert_array_equal(original, before)
        assert stream.num_weights == before.size
        model.set_weights("dense_1", original)
        np.testing.assert_array_equal(model.get_weights("dense_1"), before)

    def test_shape_preserved(self, trained_lenet):
        model, _ = trained_lenet
        _, original = apply_compression(model, "dense_1", 5.0)
        assert model.get_weights("dense_1").shape == original.shape
        model.set_weights("dense_1", original)


class TestCompressionPipeline:
    def test_default_layer_is_papers_choice(self, trained_lenet):
        model, split = trained_lenet
        p = CompressionPipeline(model, split.x_test, split.y_test)
        assert p.layer_name == "dense_1"

    def test_baseline_accuracy_reasonable(self, trained_lenet):
        model, split = trained_lenet
        p = CompressionPipeline(model, split.x_test, split.y_test)
        assert p.baseline.top1 > 0.85

    def test_delta0_accuracy_near_baseline(self, trained_lenet):
        model, split = trained_lenet
        p = CompressionPipeline(model, split.x_test, split.y_test)
        rec = p.run_delta(0.0)
        assert abs(rec.top1 - p.baseline.top1) < 0.05

    def test_model_restored_after_each_delta(self, trained_lenet):
        model, split = trained_lenet
        before = model.get_weights("dense_1").copy()
        p = CompressionPipeline(model, split.x_test, split.y_test)
        p.run_delta(20.0)
        np.testing.assert_array_equal(model.get_weights("dense_1"), before)

    def test_sweep_cr_monotonic(self, trained_lenet):
        model, split = trained_lenet
        p = CompressionPipeline(model, split.x_test, split.y_test)
        recs = p.sweep([0.0, 10.0, 20.0])
        crs = [r.cr for r in recs]
        assert crs == sorted(crs)

    def test_accuracy_eventually_degrades(self, trained_lenet):
        """Very large delta wipes out the layer's information."""
        model, split = trained_lenet
        p = CompressionPipeline(model, split.x_test, split.y_test)
        rec = p.run_delta(100.0)
        assert rec.top1 < p.baseline.top1

    def test_quantized_pipeline_runs(self, trained_lenet):
        model, split = trained_lenet
        p = CompressionPipeline(
            model, split.x_test, split.y_test, quantize_first=True
        )
        rec = p.run_delta(5.0)
        assert rec.cr > 0
        assert 0.0 <= rec.top1 <= 1.0


class TestSensitivity:
    def test_depth_ordering_shape(self, trained_lenet):
        """Fig. 9: the input conv is more sensitive than the selected
        deep FC layer (dense_1), justifying the selection policy."""
        model, split = trained_lenet
        res = layer_sensitivity(
            model,
            split.x_test[:400],
            split.y_test[:400],
            noise_fraction=1.0,
            trials=4,
            top_k=1,
        )
        by_name = {r.layer: r.accuracy_drop for r in res}
        assert res[0].layer.startswith("conv2d")
        assert by_name["conv2d_1"] > by_name["dense_1"]
        assert by_name["conv2d_2"] > by_name["dense_2"]

    def test_invalid_mode(self, trained_lenet):
        model, split = trained_lenet
        with pytest.raises(ValueError, match="mode"):
            layer_sensitivity(
                model, split.x_test[:10], split.y_test[:10], mode="nope"
            )

    def test_normalization(self, trained_lenet):
        model, split = trained_lenet
        res = layer_sensitivity(
            model, split.x_test[:100], split.y_test[:100], trials=1
        )
        norm = normalized_sensitivity(res)
        values = [v for _, v in norm]
        assert max(values) == pytest.approx(1.0) or all(v == 0.0 for v in values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_weights_restored(self, trained_lenet):
        model, split = trained_lenet
        before = {
            n: layer.params()[0].data.copy()
            for n, layer in model.parametric_layers()
        }
        layer_sensitivity(model, split.x_test[:50], split.y_test[:50], trials=1)
        for n, layer in model.parametric_layers():
            np.testing.assert_array_equal(layer.params()[0].data, before[n])

    def test_trials_validation(self, trained_lenet):
        model, split = trained_lenet
        with pytest.raises(ValueError):
            layer_sensitivity(model, split.x_test, split.y_test, trials=0)
