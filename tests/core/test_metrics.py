"""Compression metrics: weighted CR, footprint reduction, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compression import compress_percent
from repro.core.metrics import CompressionReport, layer_report, weighted_ratio


class TestWeightedRatio:
    def test_whole_model_compressed(self):
        # layer == model: weighted CR equals layer CR
        assert weighted_ratio(1000, 1000, 4.0) == pytest.approx(4.0)

    def test_nothing_compressed(self):
        assert weighted_ratio(1000, 0, 4.0) == pytest.approx(1.0)

    def test_half_compressed(self):
        # half the params at CR=2: footprint 0.5 + 0.25 = 0.75 -> wCR 4/3
        assert weighted_ratio(1000, 500, 2.0) == pytest.approx(4.0 / 3.0)

    def test_amdahl_limit(self):
        # infinite layer CR cannot beat 1 / (1 - fraction)
        w = weighted_ratio(1000, 100, 1e9)
        assert w == pytest.approx(1.0 / 0.9, rel=1e-6)

    def test_mobilenet_shape_from_paper(self):
        """Tab. II MobileNet: layer CR 4.31 but weighted CR only 1.8
        because the layer holds ~24% of the params."""
        from repro.core.metrics import param_weighted_cr

        w = weighted_ratio(4_250_000, 1_025_000, 4.31)
        assert 1.1 < w < 1.35  # true footprint ratio: Amdahl-limited
        paper = param_weighted_cr(4_250_000, 1_025_000, 4.31)
        assert paper == pytest.approx(1.80, abs=0.02)  # the printed figure

    def test_paper_weighted_cr_reproduces_alexnet_row(self):
        """Tab. II AlexNet delta=20%: CR 11.44 -> weighted CR 8.28 is only
        reachable as the param-weighted mean (the footprint ratio caps
        at 1/0.3 = 3.3)."""
        from repro.core.metrics import param_weighted_cr

        got = param_weighted_cr(24_000_000, 16_800_000, 11.44)
        assert got == pytest.approx(8.3, abs=0.05)
        assert weighted_ratio(24_000_000, 16_800_000, 11.44) < 3.33

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_ratio(0, 0, 1.0)
        with pytest.raises(ValueError):
            weighted_ratio(10, 20, 1.0)
        with pytest.raises(ValueError):
            weighted_ratio(10, 5, 0.0)


class TestLayerReport:
    def test_fields_consistent(self, rng):
        w = rng.normal(size=10_000).astype(np.float32)
        stream = compress_percent(w, 10.0)
        report = layer_report(stream, w, total_params=40_000, delta_pct=10.0)
        assert report.cr == pytest.approx(stream.compression_ratio)
        # the paper's weighted CR: param-weighted mean of layer CRs
        frac = 10_000 / 40_000
        assert report.weighted_cr == pytest.approx(frac * report.cr + (1 - frac))
        # the footprint reduction is the true byte saving
        assert report.mem_fp_reduction == pytest.approx(frac * (1 - 1 / report.cr))
        assert report.mse == pytest.approx(stream.mse(w))
        assert report.weighted_cr < report.cr  # only 25% of params compressed

    def test_row_rendering(self):
        row = CompressionReport(
            delta_pct=15.0, cr=2.5, weighted_cr=2.17, mem_fp_reduction=0.57, mse=2.01e-4
        ).as_row()
        assert "15%" in row and "2.50" in row and "57%" in row and "2.01e-04" in row
