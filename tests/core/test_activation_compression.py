"""Activation-stream compression (extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activation_compression import (
    activation_cr_profile,
    evaluate_with_compressed_activations,
)
from repro.core.compression import compress_percent
from repro.datasets import train_test
from repro.nn import TrainConfig, evaluate, train
from repro.nn.zoo import lenet5


@pytest.fixture(scope="module")
def trained():
    split = train_test("digits", 2000, 400, seed=13)
    model = lenet5.proxy(np.random.default_rng(13))
    train(model, split.x_train, split.y_train, TrainConfig(epochs=5, lr=0.05))
    return model, split


class TestTracedForward:
    def test_traced_matches_plain_forward(self, trained):
        model, split = trained
        x = split.x_test[:8]
        y_plain = model.forward(x)
        y_traced, acts = model.forward_traced(x)
        np.testing.assert_allclose(y_traced, y_plain, rtol=1e-6)
        assert set(acts) == set(model.node_names)

    def test_transform_identity(self, trained):
        model, split = trained
        x = split.x_test[:8]
        y = model.forward_transformed(x, lambda name, out: out)
        np.testing.assert_allclose(y, model.forward(x), rtol=1e-6)


class TestActivationProfile:
    def test_relu_outputs_have_zeros_and_compress_well(self, trained):
        model, split = trained
        profiles = activation_cr_profile(model, split.x_test[:64], delta_pct=5.0)
        by_name = {p.layer: p for p in profiles}
        relu = by_name["relu_1"]
        assert relu.zero_fraction > 0.2
        # activations compress better than a weight-like Gaussian stream
        gauss = compress_percent(
            np.random.default_rng(0).normal(size=relu.num_values).astype(np.float32),
            5.0,
        ).compression_ratio
        assert relu.cr > gauss

    def test_profile_covers_major_nodes(self, trained):
        model, split = trained
        profiles = activation_cr_profile(model, split.x_test[:32], delta_pct=5.0)
        names = {p.layer for p in profiles}
        assert "conv2d_1" in names and "dense_1" in names


class TestAccuracyUnderActivationCompression:
    """The extension's headline *negative* result: unlike deep weights,
    activations do not tolerate the line-fit codec — which supports the
    paper's decision to target parameters."""

    def test_activations_more_sensitive_than_weights(self, trained):
        from repro.core.pipeline import CompressionPipeline

        model, split = trained
        base = evaluate(model, split.x_test, split.y_test).top1
        act_acc = evaluate_with_compressed_activations(
            model, split.x_test, split.y_test, delta_pct=2.0
        )
        pipe = CompressionPipeline(model, split.x_test, split.y_test)
        weight_acc = pipe.run_delta(2.0).top1
        # at the same small delta, weight compression is ~free while
        # activation compression costs real accuracy
        assert base - weight_acc < 0.03
        assert base - act_acc > 0.05

    def test_deep_only_compression_hurts_less(self, trained):
        model, split = trained
        deep = {"relu_2", "max_pooling2d_2", "flatten", "relu_3", "relu_4"}
        all_acc = evaluate_with_compressed_activations(
            model, split.x_test, split.y_test, delta_pct=1.0
        )
        deep_acc = evaluate_with_compressed_activations(
            model, split.x_test, split.y_test, delta_pct=1.0, layers=deep
        )
        assert deep_acc >= all_acc

    def test_monotone_in_delta_statistically(self, trained):
        model, split = trained
        accs = [
            evaluate_with_compressed_activations(
                model, split.x_test[:200], split.y_test[:200], delta_pct=d
            )
            for d in (0.5, 5.0, 50.0)
        ]
        assert accs[0] >= accs[-1]
