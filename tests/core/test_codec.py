"""Wire-format serialization round trips and error handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import codec
from repro.core.codec import CodecError, IntegrityError
from repro.core.compression import StorageFormat, compress_percent


class TestRoundTrip:
    @pytest.mark.parametrize("delta_pct", [0.0, 10.0, 25.0])
    def test_float32_roundtrip(self, rng, delta_pct):
        w = rng.normal(size=5000).astype(np.float32)
        stream = compress_percent(w, delta_pct)
        back = codec.decode(codec.encode(stream))
        mq, qq = stream.storage_coefficients()
        np.testing.assert_array_equal(back.m, mq)
        np.testing.assert_array_equal(back.q, qq)
        np.testing.assert_array_equal(back.lengths, stream.lengths)
        assert back.delta == stream.delta
        assert back.fmt == stream.fmt

    def test_int8_roundtrip(self, rng):
        w = rng.integers(-128, 128, size=3000).astype(np.float32)
        stream = compress_percent(w, 5.0, fmt=StorageFormat.int8())
        back = codec.decode(codec.encode(stream))
        mq, qq = stream.storage_coefficients()
        np.testing.assert_array_equal(back.m, mq)
        np.testing.assert_array_equal(back.q, qq)
        assert back.fmt == StorageFormat.int8()

    def test_decompression_identical_after_roundtrip(self, rng):
        w = rng.normal(size=2000).astype(np.float32)
        stream = compress_percent(w, 12.0)
        back = codec.decode(codec.encode(stream))
        np.testing.assert_array_equal(back.decompress(), stream.decompress())

    def test_blob_size_is_header_plus_segments_plus_trailer(self, rng):
        w = rng.normal(size=1000).astype(np.float32)
        stream = compress_percent(w, 0.0)
        blob = codec.encode(stream)
        assert len(blob) == (
            codec.HEADER_BYTES
            + stream.compressed_bytes
            + codec.frame_trailer_bytes(stream.num_segments)
        )

    def test_legacy_blob_size_is_header_plus_segments(self, rng):
        w = rng.normal(size=1000).astype(np.float32)
        stream = compress_percent(w, 0.0)
        blob = codec.encode_legacy(stream)
        assert len(blob) == codec.LEGACY_HEADER_BYTES + stream.compressed_bytes

    def test_legacy_v2_messages_still_decode(self, rng):
        w = rng.normal(size=2000).astype(np.float32)
        stream = compress_percent(w, 10.0)
        back = codec.decode(codec.encode_legacy(stream))
        np.testing.assert_array_equal(back.decompress(), stream.decompress())
        assert back.delta == stream.delta

    def test_custom_format_roundtrip(self, rng):
        """Regression: the wire format is self-describing.

        Non-default coefficient widths used to encode fine and then
        fail ``decode`` with "body size mismatch" — the flags byte only
        recorded the int8 bit, so the reader assumed default widths.
        (Surfaced by the ``core.storage_format`` ablation arm.)
        """
        w = rng.normal(size=3000).astype(np.float32)
        for fmt in (
            StorageFormat(slope_bytes=2, intercept_bytes=2),  # 6 B float16
            StorageFormat(4, 4, 4, 2),  # 10 B full float32
            StorageFormat(4, 2, 3, 2),  # asymmetric widths
            StorageFormat(1, 3, 3, 2),  # int8 class, non-default widths
        ):
            stream = compress_percent(w, 8.0, fmt=fmt)
            for blob in (codec.encode(stream), codec.encode_legacy(stream)):
                back = codec.decode(blob, expected_weights=w.size)
                assert back.fmt == fmt
                mq, qq = stream.storage_coefficients()
                np.testing.assert_array_equal(back.m, mq)
                np.testing.assert_array_equal(back.q, qq)
                np.testing.assert_array_equal(back.lengths, stream.lengths)

    def test_default_formats_keep_legacy_flag_bytes(self, rng):
        """Messages in the two historical formats stay byte-compatible:
        width code 0 means "class default", so the flags byte is still
        bare 0x00 / 0x01 and pre-fix readers parse them unchanged."""
        w = rng.normal(size=500).astype(np.float32)
        assert codec.encode(compress_percent(w, 5.0))[5] == 0x00
        q = compress_percent(w, 5.0, fmt=StorageFormat.int8())
        assert codec.encode(q)[5] == 0x01

    def test_unrepresentable_format_fails_at_encode(self, rng):
        """Formats the body layout cannot hold raise at encode time
        instead of emitting a blob no decoder can parse."""
        w = rng.normal(size=500).astype(np.float32)
        for fmt, match in (
            (StorageFormat(4, 5, 3, 2), "slope"),
            (StorageFormat(4, 3, 1, 2), "intercept"),
            (StorageFormat(4, 3, 3, 4), "length"),
        ):
            stream = compress_percent(w, 5.0, fmt=fmt)
            with pytest.raises(CodecError, match=match):
                codec.encode(stream)
            with pytest.raises(CodecError, match=match):
                codec.encode_legacy(stream)

    def test_empty_stream(self):
        stream = compress_percent(np.array([], dtype=np.float32), 0.0)
        back = codec.decode(codec.encode(stream))
        assert back.num_segments == 0


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(ValueError, match="truncated"):
            codec.decode(b"RW")

    def test_bad_magic(self, rng):
        blob = bytearray(codec.encode(compress_percent(rng.normal(size=10), 0.0)))
        blob[0] = ord("X")
        with pytest.raises(ValueError, match="magic"):
            codec.decode(bytes(blob))

    def test_truncated_body(self, rng):
        blob = codec.encode(compress_percent(rng.normal(size=100), 0.0))
        with pytest.raises(ValueError, match="size mismatch"):
            codec.decode(blob[:-3])

    def test_bad_version(self, rng):
        blob = bytearray(codec.encode(compress_percent(rng.normal(size=10), 0.0)))
        blob[4] = 99
        with pytest.raises(ValueError, match="version"):
            codec.decode(bytes(blob))


class TestCodecErrorType:
    """Every malformed payload raises the dedicated ``CodecError``.

    ``CodecError`` subclasses ``ValueError``, so the legacy expectations
    above keep holding; these pin the precise type per failure mode.
    """

    def _blob(self, rng, n=100) -> bytearray:
        return bytearray(codec.encode(compress_percent(rng.normal(size=n), 0.0)))

    def test_is_value_error_subclass(self):
        assert issubclass(CodecError, ValueError)

    def test_truncated_header(self):
        with pytest.raises(CodecError, match="truncated"):
            codec.decode(b"RWCS\x02")

    def test_empty_buffer(self):
        with pytest.raises(CodecError, match="truncated"):
            codec.decode(b"")

    def test_bad_magic(self, rng):
        blob = self._blob(rng)
        blob[:4] = b"NOPE"
        with pytest.raises(CodecError, match="magic"):
            codec.decode(bytes(blob))

    def test_unknown_version(self, rng):
        blob = self._blob(rng)
        blob[4] = 77
        with pytest.raises(CodecError, match="version"):
            codec.decode(bytes(blob))

    def test_unknown_flags(self, rng):
        blob = self._blob(rng)
        blob[5] |= 0x80  # a flag bit no writer ever sets
        with pytest.raises(CodecError, match="flags"):
            codec.decode(bytes(blob))

    def test_truncated_body(self, rng):
        blob = self._blob(rng)
        with pytest.raises(CodecError, match="size mismatch"):
            codec.decode(bytes(blob[:-1]))

    def test_trailing_garbage(self, rng):
        blob = self._blob(rng)
        with pytest.raises(CodecError, match="size mismatch"):
            codec.decode(bytes(blob) + b"\x00\x00")


class TestIntegrityFraming:
    """Version-3 CRC framing: detection, localization, lenient parsing."""

    def _stream(self, rng, n=400, pct=5.0):
        return compress_percent(rng.normal(size=n).astype(np.float32), pct)

    def test_every_single_bit_flip_is_detected(self, rng):
        stream = self._stream(rng, n=50, pct=0.0)
        blob = codec.encode(stream)
        for bit in range(len(blob) * 8):
            damaged = bytearray(blob)
            damaged[bit >> 3] ^= 0x80 >> (bit & 7)
            with pytest.raises(CodecError):
                codec.decode(bytes(damaged))

    def test_integrity_error_reports_damaged_segments(self, rng):
        stream = self._stream(rng)
        blob = bytearray(codec.encode(stream))
        # hit a body byte inside the second frame
        target = codec.HEADER_BYTES + (codec.SEGMENTS_PER_FRAME + 3) * stream.fmt.segment_bytes
        blob[target] ^= 0xFF
        with pytest.raises(IntegrityError, match="frame checksum") as exc:
            codec.decode(bytes(blob))
        segs = exc.value.segments
        assert segs
        assert all(
            codec.SEGMENTS_PER_FRAME <= s < 2 * codec.SEGMENTS_PER_FRAME for s in segs
        )

    def test_integrity_error_is_codec_error(self):
        assert issubclass(IntegrityError, CodecError)

    def test_lenient_localizes_body_damage_to_one_frame(self, rng):
        stream = self._stream(rng)
        blob = bytearray(codec.encode(stream))
        target = codec.HEADER_BYTES + 2 * stream.fmt.segment_bytes
        blob[target] ^= 0x01
        parsed = codec.parse_lenient(bytes(blob))
        damaged = np.flatnonzero(parsed.damaged)
        assert damaged.size
        assert damaged.max() < codec.SEGMENTS_PER_FRAME  # first frame only
        assert parsed.num_segments == stream.num_segments

    def test_lenient_survives_header_crc_damage(self, rng):
        # a flip in the stored header CRC must not void the whole message
        stream = self._stream(rng)
        blob = bytearray(codec.encode(stream))
        blob[11] ^= 0x10  # inside the u32 header-CRC field
        with pytest.raises(IntegrityError):
            codec.decode(bytes(blob))
        parsed = codec.parse_lenient(bytes(blob))
        assert not parsed.damaged.any()  # body is pristine

    def test_lenient_trailer_damage_flags_only_its_frame(self, rng):
        stream = self._stream(rng)
        blob = bytearray(codec.encode(stream))
        blob[-1] ^= 0x01  # last trailer CRC -> last frame suspect
        parsed = codec.parse_lenient(bytes(blob))
        damaged = np.flatnonzero(parsed.damaged)
        assert damaged.size
        assert damaged.min() >= (stream.num_segments - 1) // codec.SEGMENTS_PER_FRAME * (
            codec.SEGMENTS_PER_FRAME
        )

    def test_clean_message_parses_lenient_with_no_damage(self, rng):
        stream = self._stream(rng)
        parsed = codec.parse_lenient(codec.encode(stream))
        assert not parsed.damaged.any()
        np.testing.assert_array_equal(parsed.lengths, stream.lengths)


class TestBoundsValidation:
    """Strict validation of decoded (m, q, len) triples."""

    def test_overrun_names_the_offending_segment(self, rng):
        stream = compress_percent(rng.normal(size=500).astype(np.float32), 5.0)
        blob = codec.encode(stream)
        declared = int(stream.lengths.sum()) - 1  # one weight short
        with pytest.raises(CodecError, match=r"segment \d+ overruns") as exc:
            codec.decode(blob, expected_weights=declared)
        assert str(declared) in str(exc.value)

    def test_short_sum_is_rejected(self, rng):
        stream = compress_percent(rng.normal(size=500).astype(np.float32), 5.0)
        blob = codec.encode(stream)
        declared = int(stream.lengths.sum()) + 10
        with pytest.raises(CodecError, match="sum to"):
            codec.decode(blob, expected_weights=declared)

    def test_exact_sum_passes(self, rng):
        stream = compress_percent(rng.normal(size=500).astype(np.float32), 5.0)
        blob = codec.encode(stream)
        back = codec.decode(blob, expected_weights=int(stream.lengths.sum()))
        assert back.num_weights == int(stream.lengths.sum())

    def test_legacy_zero_length_segment_rejected(self, rng):
        # v2 has no CRCs, but bounds validation still applies
        stream = compress_percent(rng.normal(size=200).astype(np.float32), 0.0)
        blob = bytearray(codec.encode_legacy(stream))
        # zero out the u16 length field of segment 0
        off = codec.LEGACY_HEADER_BYTES + stream.fmt.segment_bytes - 2
        blob[off : off + 2] = b"\x00\x00"
        with pytest.raises(CodecError, match="non-positive length"):
            codec.decode(bytes(blob))
