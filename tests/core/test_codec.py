"""Wire-format serialization round trips and error handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import codec
from repro.core.codec import CodecError
from repro.core.compression import StorageFormat, compress_percent


class TestRoundTrip:
    @pytest.mark.parametrize("delta_pct", [0.0, 10.0, 25.0])
    def test_float32_roundtrip(self, rng, delta_pct):
        w = rng.normal(size=5000).astype(np.float32)
        stream = compress_percent(w, delta_pct)
        back = codec.decode(codec.encode(stream))
        mq, qq = stream.storage_coefficients()
        np.testing.assert_array_equal(back.m, mq)
        np.testing.assert_array_equal(back.q, qq)
        np.testing.assert_array_equal(back.lengths, stream.lengths)
        assert back.delta == stream.delta
        assert back.fmt == stream.fmt

    def test_int8_roundtrip(self, rng):
        w = rng.integers(-128, 128, size=3000).astype(np.float32)
        stream = compress_percent(w, 5.0, fmt=StorageFormat.int8())
        back = codec.decode(codec.encode(stream))
        mq, qq = stream.storage_coefficients()
        np.testing.assert_array_equal(back.m, mq)
        np.testing.assert_array_equal(back.q, qq)
        assert back.fmt == StorageFormat.int8()

    def test_decompression_identical_after_roundtrip(self, rng):
        w = rng.normal(size=2000).astype(np.float32)
        stream = compress_percent(w, 12.0)
        back = codec.decode(codec.encode(stream))
        np.testing.assert_array_equal(back.decompress(), stream.decompress())

    def test_blob_size_is_header_plus_segments(self, rng):
        w = rng.normal(size=1000).astype(np.float32)
        stream = compress_percent(w, 0.0)
        blob = codec.encode(stream)
        assert len(blob) == codec.HEADER_BYTES + stream.compressed_bytes

    def test_empty_stream(self):
        stream = compress_percent(np.array([], dtype=np.float32), 0.0)
        back = codec.decode(codec.encode(stream))
        assert back.num_segments == 0


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(ValueError, match="truncated"):
            codec.decode(b"RW")

    def test_bad_magic(self, rng):
        blob = bytearray(codec.encode(compress_percent(rng.normal(size=10), 0.0)))
        blob[0] = ord("X")
        with pytest.raises(ValueError, match="magic"):
            codec.decode(bytes(blob))

    def test_truncated_body(self, rng):
        blob = codec.encode(compress_percent(rng.normal(size=100), 0.0))
        with pytest.raises(ValueError, match="size mismatch"):
            codec.decode(blob[:-3])

    def test_bad_version(self, rng):
        blob = bytearray(codec.encode(compress_percent(rng.normal(size=10), 0.0)))
        blob[4] = 99
        with pytest.raises(ValueError, match="version"):
            codec.decode(bytes(blob))


class TestCodecErrorType:
    """Every malformed payload raises the dedicated ``CodecError``.

    ``CodecError`` subclasses ``ValueError``, so the legacy expectations
    above keep holding; these pin the precise type per failure mode.
    """

    def _blob(self, rng, n=100) -> bytearray:
        return bytearray(codec.encode(compress_percent(rng.normal(size=n), 0.0)))

    def test_is_value_error_subclass(self):
        assert issubclass(CodecError, ValueError)

    def test_truncated_header(self):
        with pytest.raises(CodecError, match="truncated"):
            codec.decode(b"RWCS\x02")

    def test_empty_buffer(self):
        with pytest.raises(CodecError, match="truncated"):
            codec.decode(b"")

    def test_bad_magic(self, rng):
        blob = self._blob(rng)
        blob[:4] = b"NOPE"
        with pytest.raises(CodecError, match="magic"):
            codec.decode(bytes(blob))

    def test_unknown_version(self, rng):
        blob = self._blob(rng)
        blob[4] = 77
        with pytest.raises(CodecError, match="version"):
            codec.decode(bytes(blob))

    def test_unknown_flags(self, rng):
        blob = self._blob(rng)
        blob[5] |= 0x80  # a flag bit no writer ever sets
        with pytest.raises(CodecError, match="flags"):
            codec.decode(bytes(blob))

    def test_truncated_body(self, rng):
        blob = self._blob(rng)
        with pytest.raises(CodecError, match="size mismatch"):
            codec.decode(bytes(blob[:-1]))

    def test_trailing_garbage(self, rng):
        blob = self._blob(rng)
        with pytest.raises(CodecError, match="size mismatch"):
            codec.decode(bytes(blob) + b"\x00\x00")
