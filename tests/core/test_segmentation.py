"""Segmentation kernel: vectorized greedy vs reference, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.segmentation import (
    delta_from_percent,
    is_weak_monotonic,
    segment_boundaries,
    segment_greedy_reference,
    segment_lengths,
    step_signs,
)


class TestBasics:
    def test_empty_stream(self):
        assert segment_boundaries(np.array([]), 0.0).tolist() == [0]

    def test_single_element(self):
        assert segment_boundaries(np.array([3.0]), 0.0).tolist() == [0, 1]

    def test_monotonic_stream_is_one_segment(self):
        w = np.arange(100, dtype=float)
        assert segment_boundaries(w, 0.0).tolist() == [0, 100]

    def test_decreasing_stream_is_one_segment(self):
        w = -np.arange(50, dtype=float)
        assert segment_boundaries(w, 0.0).tolist() == [0, 50]

    def test_constant_stream_is_one_segment(self):
        w = np.ones(20)
        assert segment_boundaries(w, 0.0).tolist() == [0, 20]

    def test_v_shape_splits_once(self):
        # strictly down then strictly up: break at the turning step
        w = np.array([3.0, 2.0, 1.0, 2.0, 3.0])
        b = segment_boundaries(w, 0.0)
        assert b.tolist() == [0, 3, 5]

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            segment_boundaries(np.array([1.0, 2.0]), -0.1)

    def test_lengths_sum_to_n(self):
        w = np.random.default_rng(0).normal(size=500)
        b = segment_boundaries(w, 0.05)
        assert segment_lengths(b).sum() == 500


class TestWorstCaseFig5:
    """The paper's Fig. 5: pairwise-alternating stream."""

    W = np.array([1.0, 0.9, 1.05, 0.95, 1.1, 1.0, 1.15, 1.05])

    def test_strict_sense_degenerates(self):
        b = segment_boundaries(self.W, 0.0)
        # n/2 segments of length 2 each: compression ratio ~ 1
        assert segment_lengths(b).tolist() == [2, 2, 2, 2]

    def test_weak_sense_collapses_to_one_segment(self):
        # the small back-steps (0.1) fall within delta, the big trend is up
        b = segment_boundaries(self.W, 0.12)
        assert b.tolist() == [0, len(self.W)]


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("delta", [0.0, 0.1, 0.5, 2.0])
    def test_gaussian_streams(self, seed, delta):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=rng.integers(2, 300))
        assert np.array_equal(
            segment_boundaries(w, delta), segment_greedy_reference(w, delta)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_discrete_streams_with_ties(self, seed):
        rng = np.random.default_rng(seed + 100)
        w = rng.integers(-3, 4, size=200).astype(float)
        for delta in (0.0, 1.0, 2.0):
            assert np.array_equal(
                segment_boundaries(w, delta), segment_greedy_reference(w, delta)
            )

    def test_alternating_equal_magnitude(self):
        w = np.tile([0.0, 1.0], 50)
        assert np.array_equal(
            segment_boundaries(w, 0.0), segment_greedy_reference(w, 0.0)
        )


class TestProperties:
    @given(
        w=hnp.arrays(
            np.float64,
            st.integers(0, 120),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        delta=st.floats(0, 10),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_covers_exactly(self, w, delta):
        b = segment_boundaries(w, delta)
        assert b[0] == 0 and b[-1] == len(w.ravel()) if len(w) else b.tolist() == [0]
        assert (np.diff(b) > 0).all()

    @given(
        w=hnp.arrays(
            np.float64,
            st.integers(2, 120),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        delta=st.floats(0, 10),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_segment_is_weak_monotonic(self, w, delta):
        b = segment_boundaries(w, delta)
        for i in range(len(b) - 1):
            assert is_weak_monotonic(w[b[i] : b[i + 1]], delta)

    @given(
        w=hnp.arrays(
            np.float64,
            st.integers(2, 100),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        delta=st.floats(0, 5),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_reference(self, w, delta):
        assert np.array_equal(
            segment_boundaries(w, delta), segment_greedy_reference(w, delta)
        )

    @given(
        w=hnp.arrays(
            np.float64,
            st.integers(2, 100),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_larger_delta_never_increases_segments(self, w):
        # monotonicity of the segmentation in delta, on a grid
        counts = [
            len(segment_boundaries(w, d)) - 1 for d in (0.0, 1.0, 5.0, 100.0)
        ]
        assert counts == sorted(counts, reverse=True)

    @given(
        w=hnp.arrays(
            np.float64,
            st.integers(2, 80),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_huge_delta_gives_single_segment(self, w):
        span = float(w.max() - w.min()) + 1.0
        assert segment_boundaries(w, span).tolist() == [0, len(w)]


class TestDeltaFromPercent:
    def test_percent_of_range(self):
        w = np.array([-1.0, 3.0])
        assert delta_from_percent(w, 25.0) == pytest.approx(1.0)

    def test_zero_percent(self):
        assert delta_from_percent(np.array([1.0, 2.0]), 0.0) == 0.0

    def test_empty(self):
        assert delta_from_percent(np.array([]), 10.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            delta_from_percent(np.array([1.0]), -1.0)


class TestStepSigns:
    def test_classification(self):
        w = np.array([0.0, 2.0, 1.9, -1.0])
        signs = step_signs(w, delta=0.5)
        assert signs.tolist() == [1, 0, -1]
