"""Compression API: ratios, reconstruction error, formats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.compression import (
    CompressedStream,
    StorageFormat,
    compress,
    compress_percent,
    quantize_coefficient,
)


class TestStorageFormat:
    def test_default_is_8_bytes_per_segment(self):
        assert StorageFormat().segment_bytes == 8

    def test_int8_format(self):
        fmt = StorageFormat.int8()
        assert fmt.weight_bytes == 1
        assert fmt.segment_bytes == 6

    def test_max_segment_length(self):
        assert StorageFormat().max_segment_length == 65535


class TestQuantizeCoefficient:
    def test_float32_roundtrip(self):
        v = np.array([0.1, -2.5])
        out = quantize_coefficient(v, 4)
        np.testing.assert_allclose(out, v.astype(np.float32))

    def test_24bit_relative_error(self, rng):
        v = rng.normal(size=1000)
        out = quantize_coefficient(v, 3)
        rel = np.abs(out - v) / np.abs(v)
        assert rel.max() < 2**-15

    def test_float16(self):
        out = quantize_coefficient(np.array([1.0 / 3.0]), 2)
        assert out[0] == np.float64(np.float16(1.0 / 3.0))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            quantize_coefficient(np.array([1.0]), 1)


class TestCompress:
    def test_delta0_cr_matches_paper_calibration(self, rng):
        """delta=0 on a high-entropy stream gives CR ~ 1.21 (Tab. II)."""
        w = rng.normal(size=200_000).astype(np.float32)
        cs = compress_percent(w, 0.0)
        assert cs.compression_ratio == pytest.approx(1.21, abs=0.02)

    def test_cr_increases_with_delta(self, rng):
        w = rng.normal(size=50_000).astype(np.float32)
        crs = [compress_percent(w, d).compression_ratio for d in (0, 5, 10, 15, 20)]
        assert crs == sorted(crs)
        assert crs[-1] > 2 * crs[0]

    def test_pure_line_compresses_to_one_segment(self):
        w = np.linspace(0, 1, 10_000).astype(np.float32)
        cs = compress(w, 0.0)
        assert cs.num_segments == 1
        assert cs.compression_ratio > 1000
        np.testing.assert_allclose(cs.decompress(), w, atol=1e-4)

    def test_weight_count_preserved(self, rng):
        w = rng.normal(size=777)
        cs = compress(w, 0.3)
        assert cs.num_weights == 777
        assert cs.decompress().shape == (777,)

    def test_long_segments_are_split(self):
        w = np.linspace(0, 1, 200_000).astype(np.float64)
        cs = compress(w, 0.0)
        assert int(cs.lengths.max()) <= StorageFormat().max_segment_length
        assert cs.num_weights == 200_000

    def test_mse_zero_for_representable_stream(self):
        # two-point segments are always fit exactly (before coefficient
        # rounding, which is tiny)
        w = np.array([0.0, 1.0, 0.5, 1.5], dtype=np.float32)
        cs = compress(w, 0.0)
        assert cs.mse(w) < 1e-9

    def test_mse_rejects_wrong_length(self, rng):
        cs = compress(rng.normal(size=10), 0.0)
        with pytest.raises(ValueError):
            cs.mse(np.zeros(11))

    def test_empty_stream(self):
        cs = compress(np.array([]), 0.0)
        assert cs.num_weights == 0
        assert cs.decompress().size == 0

    def test_tensor_input_flattened_c_order(self, rng):
        w2d = rng.normal(size=(30, 40))
        cs = compress(w2d, 0.1)
        np.testing.assert_allclose(
            cs.decompress(dtype=np.float64),
            compress(w2d.ravel(), 0.1).decompress(dtype=np.float64),
        )

    @given(
        w=hnp.arrays(
            np.float32,
            st.integers(1, 300),
            elements=st.floats(-100, 100, allow_nan=False, width=32),
        ),
        delta_pct=st.floats(0, 30),
    )
    @settings(max_examples=100, deadline=None)
    def test_decompressed_length_always_matches(self, w, delta_pct):
        cs = compress_percent(w, delta_pct)
        assert cs.decompress().shape == w.shape
        assert int(cs.lengths.sum()) == w.size

    @given(
        seed=st.integers(0, 100),
        n=st.integers(100, 2000),
    )
    @settings(max_examples=30, deadline=None)
    def test_mse_grows_with_delta_statistically(self, seed, n):
        """On Gaussian streams, larger delta gives larger (or equal) MSE."""
        w = np.random.default_rng(seed).normal(size=n)
        mses = [compress_percent(w, d).mse(w) for d in (0.0, 10.0, 30.0)]
        assert mses[0] <= mses[1] * 1.05 + 1e-12
        assert mses[1] <= mses[2] * 1.05 + 1e-12

    def test_approximation_error_bounded_by_segment_spread(self, rng):
        """Within a segment the line fit error can't exceed the segment's
        value spread (least squares is at least as good as a constant)."""
        w = rng.normal(size=2000)
        cs = compress_percent(w, 15.0)
        approx = cs.decompress(dtype=np.float64)
        b = np.concatenate(([0], np.cumsum(cs.lengths)))
        for i in range(cs.num_segments):
            seg = w[b[i] : b[i + 1]]
            err = np.abs(approx[b[i] : b[i + 1]] - seg).max()
            spread = seg.max() - seg.min() + 1e-6
            assert err <= spread


class TestCompressedStreamValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            CompressedStream(
                m=np.zeros(2), q=np.zeros(3), lengths=np.ones(2, dtype=int), delta=0.0
            )

    def test_nonpositive_length(self):
        with pytest.raises(ValueError):
            CompressedStream(
                m=np.zeros(1), q=np.zeros(1), lengths=np.zeros(1, dtype=int), delta=0.0
            )
