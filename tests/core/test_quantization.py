"""Int8 quantization: round-trip bounds and footprint accounting."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantization import (
    model_footprint,
    quantize_model,
    quantize_tensor,
)
from repro.nn.layers import Conv2D, Dense, Flatten
from repro.nn.sequential import Sequential


class TestQuantizeTensor:
    def test_roundtrip_error_bounded_by_half_step(self, rng):
        w = rng.normal(size=10_000).astype(np.float32) * 0.1
        qt = quantize_tensor(w)
        err = np.abs(qt.dequantize() - w)
        assert err.max() <= qt.scale * 0.51  # half a quantization step

    def test_affine_map_definition(self, rng):
        w = rng.normal(size=100)
        qt = quantize_tensor(w)
        expected = (qt.values.astype(np.float32) - qt.zero_point) * np.float32(qt.scale)
        np.testing.assert_array_equal(qt.dequantize(), expected)

    def test_zero_maps_near_zero(self, rng):
        # TFLite requires exact-zero representability within one step
        w = np.concatenate([[0.0], rng.normal(size=100)])
        qt = quantize_tensor(w)
        dq = qt.dequantize()
        assert abs(dq[0]) <= qt.scale

    def test_constant_tensor(self):
        qt = quantize_tensor(np.full(10, 3.0))
        assert qt.dequantize().shape == (10,)
        assert np.abs(qt.dequantize() - 3.0).max() <= qt.scale

    def test_all_zero_tensor(self):
        qt = quantize_tensor(np.zeros(5))
        np.testing.assert_array_equal(qt.dequantize(), np.zeros(5, dtype=np.float32))

    def test_preserves_shape(self, rng):
        qt = quantize_tensor(rng.normal(size=(4, 5, 3)))
        assert qt.values.shape == (4, 5, 3)

    @given(
        w=hnp.arrays(
            np.float64,
            st.integers(1, 500),
            elements=st.floats(-1000, 1000, allow_nan=False),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_int8_range_respected(self, w):
        qt = quantize_tensor(w)
        assert qt.values.dtype == np.int8
        assert -128 <= int(qt.values.min()) and int(qt.values.max()) <= 127

    @given(
        w=hnp.arrays(
            np.float32,
            st.integers(2, 300),
            elements=st.floats(-100, 100, allow_nan=False, width=32),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_error_within_one_step(self, w):
        # weights are float32 in this system; the float32 dequant path is
        # only exact for float32-representable (non-subnormal) scales.
        # The guard must use the quantizer's *effective* range — it clamps
        # lo/hi to include 0, so a constant all-positive tensor like
        # [1e-45, 1e-45] still quantizes over [0, 1e-45] with a subnormal
        # scale even though max - min == 0.
        lo = min(float(w.min()), 0.0)
        hi = max(float(w.max()), 0.0)
        assume(hi - lo == 0.0 or hi - lo > 1e-30)
        qt = quantize_tensor(w)
        assert np.abs(qt.dequantize() - w).max() <= qt.scale * (1.0 + 1e-3)


class TestModelQuantization:
    def _model(self, rng):
        return Sequential(
            [
                ("conv_1", Conv2D(1, 2, 3, rng=rng)),
                ("flat", Flatten()),
                ("dense_1", Dense(2 * 4 * 4, 10, rng=rng)),
            ]
        )

    def test_quantize_model_covers_parametric_layers(self, rng):
        m = self._model(rng)
        q = quantize_model(m)
        assert set(q) == {"conv_1", "dense_1"}

    def test_footprint_reduction_near_4x(self, rng):
        m = self._model(rng)
        q = quantize_model(m)
        full = model_footprint(m.num_params)
        quant = model_footprint(m.num_params, q)
        # weights go 4 -> 1 byte; biases stay float
        assert full / quant > 3.0

    def test_footprint_without_quantization(self):
        assert model_footprint(100) == 400
