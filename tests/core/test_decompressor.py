"""Decompression unit: bit-exact accumulator semantics and cycle model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compression import compress, compress_percent
from repro.core.decompressor import (
    DecompressionUnit,
    DecompressorTiming,
    decompress_accumulate,
)


def _sequential_reference(stream, dtype=np.float32):
    """Literal Eq. (2): w~_1 = q; w~_j = w~_{j-1} + m, scalar loop."""
    m, q = stream.storage_coefficients()
    out = []
    for mi, qi, li in zip(m, q, stream.lengths):
        acc = dtype(qi)
        out.append(acc)
        for _ in range(int(li) - 1):
            acc = dtype(acc + dtype(mi))
            out.append(acc)
    return np.array(out, dtype=dtype)


class TestAccumulatorSemantics:
    @pytest.mark.parametrize("seed", range(5))
    def test_bit_exact_vs_scalar_loop(self, seed):
        w = np.random.default_rng(seed).normal(size=300).astype(np.float32)
        stream = compress_percent(w, 10.0)
        fast = decompress_accumulate(stream)
        ref = _sequential_reference(stream)
        assert fast.dtype == np.float32
        np.testing.assert_array_equal(fast, ref)

    def test_close_to_exact_line_evaluation(self, rng):
        w = rng.normal(size=1000).astype(np.float32)
        stream = compress_percent(w, 15.0)
        hw = decompress_accumulate(stream)
        exact = stream.decompress(dtype=np.float64)
        # float32 accumulation error is bounded by ~len * eps * |value|
        np.testing.assert_allclose(hw, exact, atol=1e-4, rtol=1e-4)

    def test_length_preserved(self, rng):
        w = rng.normal(size=123)
        stream = compress(w, 0.5)
        assert decompress_accumulate(stream).shape == (123,)


class TestCycleModel:
    def test_default_timing_one_weight_per_cycle(self, rng):
        w = rng.normal(size=500).astype(np.float32)
        stream = compress_percent(w, 5.0)
        unit = DecompressionUnit()
        assert unit.cycles(stream) == stream.num_segments + stream.num_weights

    def test_custom_timing(self, rng):
        w = rng.normal(size=100)
        stream = compress(w, 0.1)
        unit = DecompressionUnit(DecompressorTiming(init_cycles=3, run_cycles_per_weight=2))
        assert unit.cycles(stream) == 3 * stream.num_segments + 2 * stream.num_weights

    def test_cycles_for_aggregate_counts(self):
        unit = DecompressionUnit()
        assert unit.cycles_for(num_weights=1000, num_segments=300) == 1300

    def test_emit_matches_accumulate(self, rng):
        w = rng.normal(size=200).astype(np.float32)
        stream = compress_percent(w, 10.0)
        np.testing.assert_array_equal(
            DecompressionUnit().emit(stream), decompress_accumulate(stream)
        )
