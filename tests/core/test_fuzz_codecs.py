"""Adversarial-bytes fuzzing of every registered codec's decode path.

The contract under fuzz: a decoder fed damaged or attacker-controlled
bytes must either raise :class:`CodecError` or return a correctly-shaped
stream — never hang, never leak a foreign exception type, never return
an array of the wrong size.  Plus the integrity property the v3 wire
framing and the blob checksums were built for: a single flipped bit in a
protected message never decodes silently.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import codec as wire
from repro.core.codecs import CompressedBlob, get_codec
from repro.core.compression import compress
from repro.core.errors import CodecError, IntegrityError

ALL_CODECS = ["linefit", "rle", "huffman", "lz", "quantize-int8"]

_RNG = np.random.default_rng(99)
_STREAM = _RNG.standard_normal(256).astype(np.float32)

#: one clean reference blob per codec, encoded once for all examples
_BLOBS = {
    name: get_codec(name, delta_pct=10.0).encode(_STREAM) for name in ALL_CODECS
}


def _mutate(payload: bytes, op: int, pos: int, junk: bytes) -> bytes:
    """Deterministic payload mutation chosen by drawn parameters."""
    if not payload:
        return junk
    pos %= len(payload)
    if op == 0:  # flip one bit
        buf = bytearray(payload)
        buf[pos] ^= 1 << (pos % 8)
        return bytes(buf)
    if op == 1:  # truncate
        return payload[:pos]
    if op == 2:  # drop a middle slice
        return payload[:pos] + payload[pos + 1 + len(junk) :]
    if op == 3:  # splice junk in place
        return payload[:pos] + junk + payload[pos + len(junk) :]
    return payload + junk  # trailing garbage


@pytest.mark.parametrize("name", ALL_CODECS)
@settings(max_examples=60, deadline=None)
@given(
    op=st.integers(min_value=0, max_value=4),
    pos=st.integers(min_value=0),
    junk=st.binary(min_size=0, max_size=32),
)
def test_mutated_payload_never_returns_wrong_shape(name, op, pos, junk):
    blob = _BLOBS[name]
    damaged = CompressedBlob(
        codec=blob.codec,
        params=blob.params,
        payload=_mutate(blob.payload, op, pos, junk),
        meta=blob.meta,
        original_bytes=blob.original_bytes,
        compressed_bytes=blob.compressed_bytes,
    )
    codec = get_codec(name, delta_pct=10.0)
    try:
        out = codec.decode(damaged)
    except CodecError:
        return  # detected — the contract's preferred outcome
    # silent decode is allowed (e.g. a flipped value byte in an RLE
    # body) but the shape must still be the declared one
    assert isinstance(out, np.ndarray)
    assert out.size == _STREAM.size


@pytest.mark.parametrize("name", ALL_CODECS)
@settings(max_examples=40, deadline=None)
@given(payload=st.binary(min_size=0, max_size=200))
def test_arbitrary_bytes_never_leak_foreign_exceptions(name, payload):
    blob = _BLOBS[name]
    codec = get_codec(name, delta_pct=10.0)
    damaged = CompressedBlob(
        codec=blob.codec, params=blob.params, payload=payload, meta=blob.meta
    )
    try:
        out = codec.decode(damaged)
    except CodecError:
        return
    assert isinstance(out, np.ndarray)
    assert out.size == _STREAM.size


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_wire_decode_survives_arbitrary_bytes(data):
    try:
        wire.decode(data)
    except CodecError:
        pass  # includes IntegrityError; anything else fails the test


class TestSingleBitFlipProperty:
    """Round-trip under single-bit flips: the CRC framing catches them."""

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=7), bitpos=st.integers(min_value=0))
    def test_v3_wire_flip_always_detected(self, seed, bitpos):
        rng = np.random.default_rng(seed)
        payload = wire.encode(compress(rng.standard_normal(300), delta=0.1))
        bitpos %= len(payload) * 8
        buf = bytearray(payload)
        buf[bitpos // 8] ^= 1 << (bitpos % 8)
        with pytest.raises(CodecError):
            wire.decode(bytes(buf))

    @pytest.mark.parametrize("name", ALL_CODECS)
    @settings(max_examples=40, deadline=None)
    @given(bitpos=st.integers(min_value=0))
    def test_blob_checksum_flip_always_detected(self, name, bitpos):
        blob = _BLOBS[name].with_checksum()
        bitpos %= len(blob.payload) * 8
        buf = bytearray(blob.payload)
        buf[bitpos // 8] ^= 1 << (bitpos % 8)
        damaged = CompressedBlob(
            codec=blob.codec,
            params=blob.params,
            payload=bytes(buf),
            meta=blob.meta,
        )
        with pytest.raises(IntegrityError):
            damaged.verify()
