"""Multi-layer compression optimizer (the paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multilayer import optimize_multilayer
from repro.datasets import train_test
from repro.nn import TrainConfig, train
from repro.nn.zoo import lenet5


@pytest.fixture(scope="module")
def trained():
    split = train_test("digits", 2500, 500, seed=5)
    model = lenet5.proxy(np.random.default_rng(5))
    train(model, split.x_train, split.y_train, TrainConfig(epochs=6, lr=0.05))
    return model, split, lenet5.full()


class TestOptimizer:
    def test_respects_accuracy_budget(self, trained):
        model, split, spec = trained
        plan = optimize_multilayer(
            model, spec, split.x_test, split.y_test, max_accuracy_drop=0.05
        )
        assert plan.accuracy_drop <= 0.05 + 1e-9
        assert plan.baseline_accuracy > 0.85

    def test_at_least_matches_best_feasible_single_layer(self, trained):
        """The extension must never do worse than the best single
        (layer, delta) assignment that fits the same accuracy budget."""
        from repro.core import compress_percent
        from repro.core.pipeline import CompressionPipeline

        model, split, spec = trained
        budget = 0.10
        plan = optimize_multilayer(
            model, spec, split.x_test, split.y_test, max_accuracy_drop=budget
        )
        best_single = 0
        for layer in ("dense_1", "dense_2", "dense_3"):
            pipe = CompressionPipeline(
                model, split.x_test, split.y_test, layer_name=layer
            )
            for delta in (5.0, 10.0, 15.0, 20.0):
                record = pipe.run_delta(delta)
                if pipe.baseline.top1 - record.top1 <= budget:
                    stream = compress_percent(
                        spec.materialize(layer).ravel(), delta
                    )
                    saving = stream.original_bytes - stream.compressed_bytes
                    best_single = max(best_single, saving)
        assert plan.saving_bytes >= 0.95 * best_single
        assert len(plan.assignments) >= 1

    def test_model_restored(self, trained):
        model, split, spec = trained
        before = {
            n: layer.params()[0].data.copy()
            for n, layer in model.parametric_layers()
        }
        optimize_multilayer(
            model, spec, split.x_test, split.y_test, max_accuracy_drop=0.05
        )
        for n, layer in model.parametric_layers():
            np.testing.assert_array_equal(layer.params()[0].data, before[n])

    def test_zero_budget_allows_only_harmless_deltas(self, trained):
        model, split, spec = trained
        plan = optimize_multilayer(
            model, spec, split.x_test, split.y_test, max_accuracy_drop=0.0
        )
        assert plan.accuracy >= plan.baseline_accuracy

    def test_larger_budget_never_saves_less(self, trained):
        model, split, spec = trained
        small = optimize_multilayer(
            model, spec, split.x_test, split.y_test, max_accuracy_drop=0.02
        )
        large = optimize_multilayer(
            model, spec, split.x_test, split.y_test, max_accuracy_drop=0.15
        )
        assert large.saving_bytes >= small.saving_bytes

    def test_negative_budget_rejected(self, trained):
        model, split, spec = trained
        with pytest.raises(ValueError):
            optimize_multilayer(
                model, spec, split.x_test, split.y_test, max_accuracy_drop=-0.1
            )

    def test_footprint_reduction_fraction(self, trained):
        model, split, spec = trained
        plan = optimize_multilayer(
            model, spec, split.x_test, split.y_test, max_accuracy_drop=0.10
        )
        assert 0.0 <= plan.footprint_reduction < 1.0
