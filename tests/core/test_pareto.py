"""Pareto utilities on the accuracy/latency/energy space."""

from __future__ import annotations

import pytest

from repro.core.pareto import DesignPoint, dominates, knee_point, pareto_front


def P(label, acc, lat, en):
    return DesignPoint(label=label, accuracy=acc, latency=lat, energy=en)


class TestDominates:
    def test_clear_domination(self):
        assert dominates(P("a", 0.9, 0.5, 0.5), P("b", 0.8, 0.9, 0.9))

    def test_equal_points_do_not_dominate(self):
        a, b = P("a", 0.9, 0.5, 0.5), P("b", 0.9, 0.5, 0.5)
        assert not dominates(a, b) and not dominates(b, a)

    def test_tradeoff_no_domination(self):
        a, b = P("a", 0.9, 0.9, 0.9), P("b", 0.8, 0.5, 0.5)
        assert not dominates(a, b) and not dominates(b, a)


class TestParetoFront:
    def test_delta_sweep_shape(self):
        # typical sweep: accuracy falls, latency/energy fall -> all Pareto
        pts = [
            P("d0", 0.99, 1.00, 1.00),
            P("d5", 0.98, 0.80, 0.82),
            P("d10", 0.96, 0.62, 0.65),
            P("d15", 0.90, 0.50, 0.52),
        ]
        assert pareto_front(pts) == pts

    def test_dominated_point_removed(self):
        pts = [
            P("good", 0.95, 0.6, 0.6),
            P("bad", 0.90, 0.7, 0.7),  # worse everywhere
        ]
        assert pareto_front(pts) == [pts[0]]

    def test_empty(self):
        assert pareto_front([]) == []


class TestKneePoint:
    PTS = [
        P("d0", 0.99, 1.00, 1.00),
        P("d10", 0.96, 0.62, 0.65),
        P("d20", 0.80, 0.40, 0.38),
    ]

    def test_headline_selection(self):
        # "less than 5% accuracy degradation": picks d10, not d20
        assert knee_point(self.PTS, max_accuracy_drop=0.05).label == "d10"

    def test_loose_budget_takes_fastest(self):
        assert knee_point(self.PTS, max_accuracy_drop=0.5).label == "d20"

    def test_no_admissible_point(self):
        with pytest.raises(ValueError):
            knee_point(self.PTS, max_accuracy_drop=-1.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            knee_point([], 0.1)

    def test_explicit_baseline(self):
        got = knee_point(self.PTS, max_accuracy_drop=0.1, baseline_accuracy=1.0)
        assert got.label == "d10"
