"""Examples are part of the public contract: they must at least compile,
and the quickstart must run end to end."""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "CR" in result.stdout
