"""Energy models: accounting structure, CACTI scaling laws."""

from __future__ import annotations

import pytest

from repro.energy import (
    COMPONENTS,
    EnergyAccount,
    EnergyBreakdown,
    EnergyParams,
    estimate_dram_energy_per_byte,
    estimate_sram,
)


class TestBreakdown:
    def test_components_cover_paper_figure(self):
        assert set(COMPONENTS) == {"communication", "computation", "local_mem", "main_mem"}

    def test_addition(self):
        a = EnergyBreakdown()
        a.dynamic["communication"] = 1.0
        b = EnergyBreakdown()
        b.dynamic["communication"] = 2.0
        b.leakage["main_mem"] = 0.5
        c = a + b
        assert c.dynamic["communication"] == 3.0
        assert c.leakage["main_mem"] == 0.5
        assert c.total == pytest.approx(3.5)

    def test_scaling(self):
        a = EnergyBreakdown()
        a.dynamic["main_mem"] = 2.0
        assert a.scaled(0.5).total == pytest.approx(1.0)

    def test_component_total(self):
        a = EnergyBreakdown()
        a.dynamic["computation"] = 1.0
        a.leakage["computation"] = 0.25
        assert a.component_total("computation") == 1.25


class TestAccount:
    def test_zero_events_zero_energy(self):
        assert EnergyAccount().breakdown().total == 0.0

    def test_additivity_in_events(self):
        a = EnergyAccount(flit_hops=100, macs=1000, cycles=50)
        b = EnergyAccount(flit_hops=200, macs=2000, cycles=100)
        assert a.breakdown().total * 2 == pytest.approx(b.breakdown().total)

    def test_all_components_nonnegative(self):
        bd = EnergyAccount(
            flit_hops=10, nic_flits=5, macs=7, decompressed_weights=3,
            local_mem_bytes=100, main_mem_bytes=50, cycles=1000,
        ).breakdown()
        for c in COMPONENTS:
            assert bd.dynamic[c] >= 0 and bd.leakage[c] >= 0

    def test_main_memory_dominates_realistic_mix(self):
        """The Fig. 2 shape: per byte moved, DRAM energy >> the rest."""
        nbytes = 10_000
        bd = EnergyAccount(
            flit_hops=(nbytes // 8) * 3,
            nic_flits=2 * nbytes // 8,
            macs=nbytes // 4,
            local_mem_bytes=2 * nbytes,
            main_mem_bytes=nbytes,
            cycles=nbytes // 8,
        ).breakdown()
        assert bd.dynamic["main_mem"] > 3 * bd.dynamic["communication"]
        assert bd.dynamic["main_mem"] > 3 * bd.dynamic["computation"]

    def test_multiplier_free_decompressor_cheaper(self):
        add = EnergyAccount(decompressed_weights=1000)
        mul = EnergyAccount(decompressed_weights=1000, decompress_multiplies=True)
        assert add.breakdown().total < mul.breakdown().total

    def test_leakage_scales_with_time(self):
        a = EnergyAccount(cycles=1000).breakdown()
        b = EnergyAccount(cycles=2000).breakdown()
        assert b.total == pytest.approx(2 * a.total)
        assert a.total > 0  # leakage alone is nonzero


class TestCacti:
    def test_anchor_point(self):
        est = estimate_sram(8 * 1024)
        assert est.energy_per_byte == pytest.approx(1.0e-12)
        assert est.leakage_w == pytest.approx(0.3e-3)

    def test_energy_scales_sublinearly(self):
        small, big = estimate_sram(8 * 1024), estimate_sram(32 * 1024)
        assert big.energy_per_byte == pytest.approx(2 * small.energy_per_byte)

    def test_leakage_scales_linearly(self):
        small, big = estimate_sram(8 * 1024), estimate_sram(16 * 1024)
        assert big.leakage_w == pytest.approx(2 * small.leakage_w)

    def test_latency_monotonic(self):
        sizes = [2**k * 1024 for k in range(2, 8)]
        lats = [estimate_sram(s).access_latency_s for s in sizes]
        assert lats == sorted(lats)

    def test_latency_cycles_positive(self):
        assert estimate_sram(1024).access_latency_cycles >= 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            estimate_sram(0)

    def test_dram_energy_default_matches_params(self):
        assert estimate_dram_energy_per_byte() == pytest.approx(
            EnergyParams().main_mem_energy_per_byte, rel=0.01
        )

    def test_dram_hit_rate_bounds(self):
        with pytest.raises(ValueError):
            estimate_dram_energy_per_byte(row_hit_rate=1.5)
        assert estimate_dram_energy_per_byte(1.0) < estimate_dram_energy_per_byte(0.0)
