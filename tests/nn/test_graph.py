"""Model DAG container: construction, execution, weight access."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.graph import Model
from repro.nn.layers import Add, Concat, Conv2D, Dense, Flatten, ReLU, Softmax
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.sequential import Sequential


class TestConstruction:
    def test_duplicate_name_rejected(self, rng):
        m = Model()
        m.add(Dense(4, 4, rng=rng), name="d")
        with pytest.raises(ValueError, match="duplicate"):
            m.add(Dense(4, 4, rng=rng), name="d")

    def test_unknown_input_rejected(self, rng):
        m = Model()
        with pytest.raises(ValueError, match="unknown input"):
            m.add(Dense(4, 4, rng=rng), inputs="nope")

    def test_merge_needs_multiple_inputs(self, rng):
        m = Model()
        a = m.add(Dense(4, 4, rng=rng), name="a")
        with pytest.raises(ValueError, match=">= 2"):
            m.add(Add(), inputs=[a], name="bad")

    def test_plain_layer_single_input(self, rng):
        m = Model()
        a = m.add(Dense(4, 4, rng=rng), name="a")
        b = m.add(Dense(4, 4, rng=rng), name="b")
        with pytest.raises(ValueError, match="one input"):
            m.add(Dense(4, 4, rng=rng), inputs=[a, b], name="bad")

    def test_contains_and_getitem(self, rng):
        m = Sequential([("d", Dense(3, 2, rng=rng))])
        assert "d" in m and isinstance(m["d"], Dense)

    def test_auto_names_unique(self, rng):
        m = Sequential([Dense(3, 3, rng=rng), ReLU(), Dense(3, 3, rng=rng)])
        assert len(set(m.node_names)) == 3


class TestExecution:
    def test_sequential_matches_manual(self, rng):
        d1 = Dense(5, 4, rng=rng)
        d2 = Dense(4, 3, rng=rng)
        m = Sequential([("d1", d1), ("r", ReLU()), ("d2", d2)])
        x = rng.normal(size=(2, 5)).astype(np.float32)
        expected = d2.forward(np.maximum(d1.forward(x), 0))
        np.testing.assert_allclose(m.forward(x), expected, rtol=1e-6)

    def test_residual_add(self, rng):
        m = Model()
        a = m.add(Dense(4, 4, rng=rng), name="branch")
        m.add(Add(), inputs=[a, "input"], name="join")
        x = rng.normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(
            m.forward(x), m["branch"].forward(x) + x, rtol=1e-6
        )

    def test_fanout_gradient_accumulates(self, rng):
        """x feeds two branches; d(input) must be the sum of both paths."""
        m = Model()
        b1 = m.add(Dense(3, 3, rng=rng), inputs="input", name="b1")
        b2 = m.add(Dense(3, 3, rng=rng), inputs="input", name="b2")
        m.add(Add(), inputs=[b1, b2], name="join")
        x = rng.normal(size=(2, 3)).astype(np.float32)
        m.forward(x, training=True)
        g = np.ones((2, 3), dtype=np.float32)
        dx = m.backward(g)
        expected = g @ m["b1"].weight.data.T + g @ m["b2"].weight.data.T
        np.testing.assert_allclose(dx, expected, rtol=1e-5)

    def test_concat_branches(self, rng):
        m = Model()
        c1 = m.add(Conv2D(1, 2, 3, padding=1, rng=rng), inputs="input", name="c1")
        c2 = m.add(Conv2D(1, 3, 3, padding=1, rng=rng), inputs="input", name="c2")
        m.add(Concat(), inputs=[c1, c2], name="cat")
        y = m.forward(rng.normal(size=(2, 1, 5, 5)).astype(np.float32))
        assert y.shape == (2, 5, 5, 5)

    def test_softmax_skipped_in_training(self, rng):
        m = Sequential([("d", Dense(4, 3, rng=rng)), ("sm", Softmax())])
        x = rng.normal(size=(2, 4)).astype(np.float32)
        logits = m.forward(x, training=True)
        probs = m.forward(x, training=False)
        assert not np.allclose(logits, probs)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    def test_predict_batching_consistent(self, rng):
        m = Sequential([("d", Dense(6, 3, rng=rng))])
        x = rng.normal(size=(25, 6)).astype(np.float32)
        np.testing.assert_allclose(m.predict(x, batch_size=4), m.forward(x), rtol=1e-6)

    def test_end_to_end_gradient(self, rng):
        """Loss decreases after one SGD step on a tiny model."""
        from repro.nn.optim import SGD

        m = Sequential(
            [
                ("c", Conv2D(1, 2, 3, padding=1, rng=rng)),
                ("r", ReLU()),
                ("f", Flatten()),
                ("d", Dense(2 * 4 * 4, 3, rng=rng)),
            ]
        )
        x = rng.normal(size=(8, 1, 4, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=8)
        loss_fn = SoftmaxCrossEntropy()
        opt = SGD(m.params(), lr=0.5, momentum=0.0)
        losses = []
        for _ in range(5):
            opt.zero_grad()
            loss = loss_fn.forward(m.forward(x, training=True), y)
            m.backward(loss_fn.backward())
            opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0]


class TestWeightAccess:
    def test_get_set_roundtrip(self, rng):
        m = Sequential([("d", Dense(4, 3, rng=rng))])
        w = m.get_weights("d")
        m.set_weights("d", np.zeros_like(w))
        assert (m.get_weights("d") == 0).all()

    def test_set_shape_mismatch(self, rng):
        m = Sequential([("d", Dense(4, 3, rng=rng))])
        with pytest.raises(ValueError, match="shape mismatch"):
            m.set_weights("d", np.zeros((3, 3)))

    def test_nonparametric_layer(self):
        m = Sequential([("r", ReLU())])
        with pytest.raises(ValueError, match="no parameters"):
            m.get_weights("r")

    def test_parametric_layers_ordered(self, rng):
        m = Sequential(
            [("c", Conv2D(1, 2, 3, rng=rng)), ("r", ReLU()), ("f", Flatten()),
             ("d", Dense(2 * 2 * 2, 3, rng=rng))]
        )
        names = [n for n, _ in m.parametric_layers()]
        assert names == ["c", "d"]

    def test_num_params(self, rng):
        m = Sequential([("d", Dense(4, 3, rng=rng))])
        assert m.num_params == 4 * 3 + 3

    def test_summary_mentions_layers(self, rng):
        m = Sequential([("d", Dense(4, 3, rng=rng))])
        assert "Dense" in m.summary() and "d" in m.summary()


class TestStateDict:
    def _bn_model(self, rng):
        from repro.nn.layers import BatchNorm2D, Conv2D, Flatten, Dense

        return Sequential(
            [
                ("c", Conv2D(1, 2, 3, padding=1, bias=False, rng=rng)),
                ("bn", BatchNorm2D(2)),
                ("f", Flatten()),
                ("d", Dense(2 * 4 * 4, 3, rng=rng)),
            ]
        )

    def test_roundtrip_includes_bn_buffers(self, rng):
        m = self._bn_model(rng)
        x = rng.normal(loc=3.0, size=(16, 1, 4, 4)).astype(np.float32)
        m.forward(x, training=True)  # moves the running stats
        state = {k: v.copy() for k, v in m.state_dict().items()}
        assert "bn.buffer.running_mean" in state

        m2 = self._bn_model(np.random.default_rng(99))
        m2.load_state_dict(state)
        np.testing.assert_array_equal(m2["bn"].running_mean, m["bn"].running_mean)
        np.testing.assert_allclose(m2.forward(x), m.forward(x), rtol=1e-6)

    def test_missing_key_rejected(self, rng):
        m = self._bn_model(rng)
        state = m.state_dict()
        state.pop("bn.buffer.running_var")
        with pytest.raises(ValueError, match="state dict mismatch"):
            m.load_state_dict(state)

    def test_wrong_shape_rejected(self, rng):
        m = self._bn_model(rng)
        state = dict(m.state_dict())
        state["d.param0"] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            m.load_state_dict(state)
