"""Model zoo: Tab. I parameter counts, proxies forward & train."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import TrainConfig, train, zoo
from repro.nn.arch import LayerKind

#: paper Tab. I: (total params x1000, selected layer, type, fraction)
_TABLE1 = {
    "LeNet-5": (62, "dense_1", LayerKind.FC, 0.80),
    "AlexNet": (24_000, "dense_2", LayerKind.FC, 0.70),
    "VGG-16": (138_000, "dense_1", LayerKind.FC, 0.77),
    "MobileNet": (4_250, "conv_preds", LayerKind.CONV, 0.19),
    "Inception-v3": (23_850, "pred", LayerKind.FC, 0.09),
    "ResNet50": (25_640, "fc1000", LayerKind.FC, 0.08),
}


class TestFullSpecs:
    @pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
    def test_total_params_match_table1(self, module):
        expected_k, _, _, _ = _TABLE1[module.NAME]
        total_k = module.full().total_params / 1000
        assert total_k == pytest.approx(expected_k, rel=0.05)

    @pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
    def test_selected_layer_kind(self, module):
        _, name, kind, _ = _TABLE1[module.NAME]
        spec = module.full()
        assert spec.layer(name).kind == kind

    @pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
    def test_selected_layer_fraction(self, module):
        _, name, _, frac = _TABLE1[module.NAME]
        spec = module.full()
        got = spec.layer(name).params / spec.total_params
        assert got == pytest.approx(frac, abs=0.06)

    def test_macs_magnitudes(self):
        """Cross-check MACs against published per-inference counts."""
        assert zoo.vgg16.full().total_macs == pytest.approx(15.5e9, rel=0.05)
        assert zoo.resnet50.full().total_macs == pytest.approx(3.9e9, rel=0.05)
        assert zoo.mobilenet.full().total_macs == pytest.approx(569e6, rel=0.05)
        assert zoo.inception_v3.full().total_macs == pytest.approx(5.7e9, rel=0.05)

    @pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
    def test_depths_strictly_increasing(self, module):
        depths = [l.depth for l in module.full().parametric_layers()]
        assert depths == sorted(depths)
        assert depths[0] == 0

    def test_by_name_registry(self):
        assert zoo.BY_NAME["VGG-16"] is zoo.vgg16
        assert len(zoo.ALL_MODELS) == 6


class TestProxies:
    @pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
    def test_forward_shape(self, module):
        rng = np.random.default_rng(0)
        m = module.proxy(rng)
        in_shape = (1, 28, 28) if module.NAME == "LeNet-5" else (3, 32, 32)
        x = rng.normal(size=(2, *in_shape)).astype(np.float32)
        y = m.forward(x)
        assert y.shape[0] == 2
        np.testing.assert_allclose(y.sum(axis=1), 1.0, rtol=1e-5)

    @pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
    def test_selected_layer_exists_in_proxy(self, module):
        m = module.proxy(np.random.default_rng(0))
        assert module.SELECTED_LAYER in m

    @pytest.mark.parametrize(
        "module", [zoo.resnet50, zoo.inception_v3], ids=lambda m: m.NAME
    )
    def test_branchy_proxies_train_one_epoch(self, module):
        """DAG proxies (Add / Concat) must backprop without error."""
        rng = np.random.default_rng(1)
        m = module.proxy(rng)
        x = rng.normal(size=(32, 3, 32, 32)).astype(np.float32)
        y = rng.integers(0, 10, size=32)
        losses = train(m, x, y, TrainConfig(epochs=2, batch_size=16, lr=0.05))
        assert np.isfinite(losses).all()
