"""ArchSpec / ArchBuilder: shape propagation, counts, materialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.arch import ArchBuilder, LayerKind


class TestBuilder:
    def test_conv_shape_and_params(self):
        b = ArchBuilder("t", (3, 32, 32))
        b.conv("c1", 16, 3, stride=2, pad=1)
        spec = b.build()
        l = spec.layer("c1")
        assert l.out_shape == (16, 16, 16)
        assert l.weight_params == 16 * 3 * 9
        assert l.params == 16 * 3 * 9 + 16
        assert l.macs == 16 * 16 * 16 * 3 * 9

    def test_grouped_conv(self):
        b = ArchBuilder("t", (4, 8, 8))
        b.conv("g", 8, 3, pad=1, groups=2, bias=False)
        l = b.build().layer("g")
        assert l.weight_params == 8 * 2 * 9
        assert l.macs == 8 * 8 * 8 * 2 * 9

    def test_grouped_conv_validation(self):
        b = ArchBuilder("t", (3, 8, 8))
        with pytest.raises(ValueError):
            b.conv("g", 8, 3, groups=2)

    def test_rect_kernel(self):
        b = ArchBuilder("t", (4, 17, 17))
        b.conv("r", 8, (1, 7), pad=(0, 3), bias=False)
        l = b.build().layer("r")
        assert l.out_shape == (8, 17, 17)
        assert l.weight_params == 8 * 4 * 7

    def test_dwconv(self):
        b = ArchBuilder("t", (8, 10, 10))
        b.dwconv("dw", 3, stride=2, pad=1)
        l = b.build().layer("dw")
        assert l.out_shape == (8, 5, 5)
        assert l.weight_params == 8 * 9
        assert l.kind == LayerKind.DWCONV

    def test_fc_requires_flatten(self):
        b = ArchBuilder("t", (3, 4, 4))
        with pytest.raises(ValueError):
            b.fc("d", 10)

    def test_flatten_then_fc(self):
        b = ArchBuilder("t", (3, 4, 4))
        b.flatten().fc("d", 10)
        l = b.build().layer("d")
        assert l.weight_params == 48 * 10

    def test_pool_with_padding(self):
        b = ArchBuilder("t", (3, 56, 56))
        b.pool("p", 3, 2, pad=1)
        assert b.shape == (3, 28, 28)

    def test_depth_indices_count_parametric_only(self):
        b = ArchBuilder("t", (1, 8, 8))
        b.conv("c1", 2, 3, pad=1).pool("p", 2).conv("c2", 4, 3, pad=1)
        spec = b.build()
        assert spec.layer("c1").depth == 0
        assert spec.layer("p").depth == -1
        assert spec.layer("c2").depth == 1


class TestArchSpec:
    def _spec(self):
        b = ArchBuilder("t", (1, 8, 8))
        b.conv("c1", 2, 3, pad=1).flatten().fc("d1", 5)
        return b.build()

    def test_totals(self):
        spec = self._spec()
        assert spec.total_params == sum(l.params for l in spec.layers)
        assert spec.total_macs == sum(l.macs for l in spec.layers)

    def test_unknown_layer(self):
        with pytest.raises(KeyError):
            self._spec().layer("nope")

    def test_materialize_deterministic(self):
        spec = self._spec()
        w1 = spec.materialize("d1", seed=3)
        w2 = spec.materialize("d1", seed=3)
        np.testing.assert_array_equal(w1, w2)
        assert w1.shape == (128, 5)

    def test_materialize_seed_sensitivity(self):
        spec = self._spec()
        assert not np.array_equal(
            spec.materialize("d1", seed=0), spec.materialize("d1", seed=1)
        )

    def test_materialize_layer_independence(self):
        """Different layers never share a weight stream."""
        spec = self._spec()
        a = spec.materialize("c1", seed=0).ravel()
        b = spec.materialize("d1", seed=0).ravel()[: a.size]
        assert not np.array_equal(a, b)

    def test_materialize_nonparametric_rejected(self):
        b = ArchBuilder("t", (1, 8, 8))
        b.conv("c", 2, 3).pool("p", 2)
        with pytest.raises(ValueError):
            b.build().materialize("p")

    def test_trained_like_statistics(self):
        """Sampled weights are zero-mean with Glorot-scale std and
        heavier-than-Gaussian tails (trained-net shape)."""
        b = ArchBuilder("t", (1, 1, 1))
        b.set_shape((4096,))
        b.fc("big", 4096, bias=False)
        w = b.build().materialize("big").ravel()
        assert abs(w.mean()) < 1e-3
        assert 0.005 < w.std() < 0.05
        kurt = ((w - w.mean()) ** 4).mean() / w.var() ** 2 - 3
        assert kurt > 0.5
