"""Weight initializers and the trained-like sampler's calibration knobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.initializers import fans, glorot_uniform, he_normal, lecun_normal, trained_like


class TestFans:
    def test_dense(self):
        assert fans((100, 50)) == (100, 50)

    def test_conv_oihw(self):
        assert fans((64, 3, 7, 7)) == (3 * 49, 64 * 49)

    def test_vector(self):
        assert fans((10,)) == (10, 10)


class TestClassicalInitializers:
    def test_glorot_limits(self, rng):
        w = glorot_uniform((400, 120), rng)
        limit = np.sqrt(6.0 / 520)
        assert np.abs(w).max() <= limit
        assert w.std() == pytest.approx(limit / np.sqrt(3), rel=0.05)

    def test_he_scale(self, rng):
        w = he_normal((64, 32, 3, 3), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / (32 * 9)), rel=0.05)

    def test_lecun_scale(self, rng):
        w = lecun_normal((1000, 10), rng)
        assert w.std() == pytest.approx(np.sqrt(1.0 / 1000), rel=0.05)

    def test_dtype(self, rng):
        for init in (glorot_uniform, he_normal, lecun_normal):
            assert init((8, 8), rng).dtype == np.float32


class TestTrainedLike:
    def test_zero_mean_and_scale(self, rng):
        w = trained_like((4096, 1000), rng)
        assert abs(float(w.mean())) < 1e-3
        assert 0.005 < float(w.std()) < 0.05

    def test_tail_ratio_enforced(self, rng):
        for ratio in (8.0, 15.0, 30.0):
            w = trained_like((1000, 1000), rng, tail_ratio=ratio).ravel()
            measured = (w.max() - w.min()) / w.std()
            assert measured == pytest.approx(ratio, rel=0.05)

    def test_tail_ratio_can_shrink_natural_range(self, rng):
        natural = trained_like((1000, 1000), rng).ravel()
        natural_ratio = (natural.max() - natural.min()) / natural.std()
        clipped = trained_like((1000, 1000), rng, tail_ratio=6.0).ravel()
        clipped_ratio = (clipped.max() - clipped.min()) / clipped.std()
        assert clipped_ratio < natural_ratio

    def test_tail_outliers_are_rare(self, rng):
        w = trained_like((500, 500), rng, tail_ratio=30.0).ravel()
        extreme = np.abs(w) > 10 * w.std()
        assert extreme.mean() < 0.001  # range pinned by a handful of weights

    def test_invalid_tail_ratio(self, rng):
        with pytest.raises(ValueError):
            trained_like((100,), rng, tail_ratio=0.0)

    def test_leptokurtic(self, rng):
        w = trained_like((2000, 100), rng).ravel().astype(np.float64)
        kurt = ((w - w.mean()) ** 4).mean() / w.var() ** 2 - 3
        assert kurt > 0.3

    def test_float32_throughout(self, rng):
        assert trained_like((100, 100), rng, tail_ratio=12.0).dtype == np.float32

    def test_scale_multiplier(self, rng):
        small = trained_like((256, 256), rng, scale=0.5).std()
        base = trained_like((256, 256), rng, scale=1.0).std()
        assert small == pytest.approx(base * 0.5, rel=0.1)
