"""Layer-level gradient checks and behavioural tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Add,
    AvgPool2D,
    BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    Softmax,
)
from tests.conftest import numerical_gradient, rel_err


def _check_input_grad(layer, x, tol=1e-6):
    y0 = layer.forward(x, training=True)
    rng = np.random.default_rng(0)
    tgt = rng.normal(size=y0.shape)

    def loss():
        return float(((layer.forward(x, training=True) - tgt) ** 2).sum())

    y = layer.forward(x, training=True)
    dx = layer.backward(2 * (y - tgt))
    if isinstance(dx, list):
        raise AssertionError("merge layers need the merge helper")
    assert rel_err(dx, numerical_gradient(loss, x)) < tol


def _check_param_grads(layer, x, tol=1e-5):
    y0 = layer.forward(x, training=True)
    rng = np.random.default_rng(1)
    tgt = rng.normal(size=y0.shape)

    def loss():
        return float(((layer.forward(x, training=True) - tgt) ** 2).sum())

    for p in layer.params():
        # parameters are float32: use float64 staging for the numeric diff
        p64 = p.data.astype(np.float64)
        p.data = p64.astype(np.float32)
        p.zero_grad()
        y = layer.forward(x, training=True)
        layer.backward(2 * (y - tgt))
        num = numerical_gradient(loss, p.data, eps=1e-2)
        assert rel_err(p.grad, num) < tol, p.name


class TestConv2D:
    def test_grads(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        _check_input_grad(Conv2D(3, 4, 3, stride=2, padding=1, rng=rng), x)

    def test_param_grads(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        _check_param_grads(Conv2D(2, 3, 3, padding=1, rng=rng), x, tol=2e-3)

    def test_same_padding(self, rng):
        conv = Conv2D(1, 1, 3, padding="same", rng=rng)
        y = conv.forward(rng.normal(size=(1, 1, 9, 9)))
        assert y.shape == (1, 1, 9, 9)

    def test_same_padding_even_kernel_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv2D(1, 1, 4, padding="same", rng=rng)

    def test_channel_mismatch(self, rng):
        conv = Conv2D(3, 4, 3, rng=rng, name="c")
        with pytest.raises(ValueError, match="channels"):
            conv.forward(rng.normal(size=(1, 2, 5, 5)))

    def test_macs(self, rng):
        conv = Conv2D(3, 8, 3, padding=1, rng=rng)
        assert conv.macs_per_sample((3, 10, 10)) == 10 * 10 * 8 * 3 * 9

    def test_no_bias(self, rng):
        conv = Conv2D(1, 2, 3, bias=False, rng=rng)
        assert len(conv.params()) == 1


class TestDepthwiseConv2D:
    def test_grads(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        _check_input_grad(DepthwiseConv2D(3, 3, padding=1, rng=rng), x)

    def test_param_grads(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        _check_param_grads(DepthwiseConv2D(3, 3, padding=1, rng=rng), x, tol=2e-3)

    def test_equivalent_to_grouped_full_conv(self, rng):
        """Each channel convolved independently with its own kernel."""
        dw = DepthwiseConv2D(2, 3, padding=1, bias=False, rng=rng)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        y = dw.forward(x)
        for c in range(2):
            ref = Conv2D(1, 1, 3, padding=1, bias=False, rng=rng)
            ref.weight.data = dw.weight.data[c : c + 1]
            np.testing.assert_allclose(
                y[:, c : c + 1], ref.forward(x[:, c : c + 1]), atol=1e-5
            )

    def test_stride_shape(self, rng):
        dw = DepthwiseConv2D(4, 3, stride=2, padding=1, rng=rng)
        assert dw.forward(rng.normal(size=(1, 4, 8, 8))).shape == (1, 4, 4, 4)


class TestDense:
    def test_grads(self, rng):
        x = rng.normal(size=(4, 7))
        _check_input_grad(Dense(7, 5, rng=rng), x)

    def test_param_grads(self, rng):
        x = rng.normal(size=(3, 6))
        _check_param_grads(Dense(6, 4, rng=rng), x, tol=2e-3)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Dense(7, 5, rng=rng, name="d").forward(rng.normal(size=(4, 8)))

    def test_known_result(self):
        d = Dense(2, 2, name="d")
        d.weight.data = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        d.bias.data = np.array([10.0, 20.0], dtype=np.float32)
        y = d.forward(np.array([[1.0, 1.0]], dtype=np.float32))
        np.testing.assert_allclose(y, [[14.0, 26.0]])


class TestPooling:
    def test_maxpool_grads(self, rng):
        # distinct values so the argmax is stable under eps-perturbation
        x = rng.permutation(np.arange(2 * 2 * 6 * 6)).reshape(2, 2, 6, 6).astype(float)
        _check_input_grad(MaxPool2D(2), x, tol=1e-5)

    def test_avgpool_grads(self, rng):
        _check_input_grad(AvgPool2D(2), rng.normal(size=(2, 2, 6, 6)))

    def test_globalavg_grads(self, rng):
        _check_input_grad(GlobalAvgPool2D(), rng.normal(size=(3, 4, 5, 5)))

    def test_maxpool_value(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y = MaxPool2D(2).forward(x)
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_value(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y = AvgPool2D(2).forward(x)
        np.testing.assert_array_equal(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_globalavg_value(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(
            GlobalAvgPool2D().forward(x), x.mean(axis=(2, 3))
        )


class TestBatchNorm:
    def test_grads(self, rng):
        _check_input_grad(BatchNorm2D(3), rng.normal(size=(4, 3, 5, 5)), tol=1e-5)

    def test_training_normalizes(self, rng):
        bn = BatchNorm2D(2)
        x = rng.normal(loc=5.0, scale=3.0, size=(16, 2, 8, 8))
        y = bn.forward(x, training=True)
        assert abs(y.mean()) < 1e-6
        assert y.std() == pytest.approx(1.0, abs=1e-2)

    def test_inference_uses_running_stats(self, rng):
        bn = BatchNorm2D(2, momentum=0.0)  # running stats = last batch
        x = rng.normal(loc=5.0, scale=3.0, size=(64, 2, 8, 8))
        bn.forward(x, training=True)
        y = bn.forward(x, training=False)
        assert abs(y.mean()) < 0.05

    def test_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2D(3, name="bn").forward(rng.normal(size=(1, 2, 4, 4)))


class TestActivations:
    def test_relu_grads(self, rng):
        _check_input_grad(ReLU(), rng.normal(size=(3, 7)) + 0.05)

    def test_relu_value(self):
        y = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(y, [0.0, 0.0, 2.0])

    def test_softmax_rows_sum_to_one(self, rng):
        y = Softmax().forward(rng.normal(size=(5, 10)) * 50)
        np.testing.assert_allclose(y.sum(axis=1), 1.0, rtol=1e-6)
        assert (y >= 0).all()

    def test_softmax_stability(self):
        y = Softmax().forward(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(y, [[0.5, 0.5]])


class TestShapeLayers:
    def test_flatten_roundtrip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        y = f.forward(x, training=True)
        assert y.shape == (2, 60)
        np.testing.assert_array_equal(f.backward(y), x)

    def test_add(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        layer = Add()
        np.testing.assert_allclose(layer.forward([a, b], training=True), a + b)
        g = rng.normal(size=(2, 3))
        gs = layer.backward(g)
        assert len(gs) == 2
        np.testing.assert_array_equal(gs[0], g)

    def test_add_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            Add().forward([rng.normal(size=(2, 3)), rng.normal(size=(2, 4))])

    def test_concat_and_backward_split(self, rng):
        a = rng.normal(size=(2, 3, 4, 4))
        b = rng.normal(size=(2, 5, 4, 4))
        layer = Concat()
        y = layer.forward([a, b], training=True)
        assert y.shape == (2, 8, 4, 4)
        ga, gb = layer.backward(y)
        np.testing.assert_array_equal(ga, a)
        np.testing.assert_array_equal(gb, b)

    def test_concat_spatial_mismatch(self, rng):
        with pytest.raises(ValueError):
            Concat().forward(
                [rng.normal(size=(1, 2, 4, 4)), rng.normal(size=(1, 2, 5, 5))]
            )


class TestDropout:
    def test_identity_at_inference(self, rng):
        x = rng.normal(size=(10, 10))
        assert Dropout(0.5, rng=rng).forward(x, training=False) is x

    def test_scaling_preserves_expectation(self, rng):
        x = np.ones((200, 200))
        y = Dropout(0.3, rng=rng).forward(x, training=True)
        assert y.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
