"""im2col/col2im correctness against naive implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import col2im, conv_out_size, im2col, pad_nchw


class TestConvOutSize:
    @pytest.mark.parametrize(
        "size,k,s,p,expected",
        [(28, 5, 1, 2, 28), (28, 5, 1, 0, 24), (224, 3, 2, 1, 112), (7, 7, 1, 0, 1)],
    )
    def test_known_shapes(self, size, k, s, p, expected):
        assert conv_out_size(size, k, s, p) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 5, 1, 0)


class TestPad:
    def test_noop(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        assert pad_nchw(x, 0, 0) is x

    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 4, 5))
        assert pad_nchw(x, 1, 2).shape == (2, 3, 6, 9)


def _naive_conv(x, w, stride, pad):
    n, c, h, ww = x.shape
    o, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (ww + 2 * pad - kw) // stride + 1
    out = np.zeros((n, o, oh, ow))
    for b in range(n):
        for f in range(o):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[b, f, i, j] = (patch * w[f]).sum()
    return out


class TestIm2Col:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_gemm_equals_naive_conv(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 7, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        cols, oh, ow = im2col(x, 3, 3, stride, pad)
        out = (cols @ w.reshape(4, -1).T).reshape(2, oh, ow, 4).transpose(0, 3, 1, 2)
        np.testing.assert_allclose(out, _naive_conv(x, w, stride, pad), atol=1e-12)

    def test_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        cols, oh, ow = im2col(x, 1, 1, 1, 0)
        np.testing.assert_array_equal(cols.reshape(5, 5), x[0, 0])


class TestCol2Im:
    def test_adjoint_property(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — col2im is the exact adjoint."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * col2im(y, x.shape, 3, 3, 2, 1)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_counts_overlaps(self):
        x_shape = (1, 1, 4, 4)
        cols, oh, ow = im2col(np.ones(x_shape), 3, 3, 1, 0)
        back = col2im(np.ones_like(cols), x_shape, 3, 3, 1, 0)
        # center pixels belong to 4 windows, corners to 1
        assert back[0, 0, 0, 0] == 1
        assert back[0, 0, 1, 1] == 4
