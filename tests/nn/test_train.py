"""Loss, optimizer and training-loop tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, SoftmaxCrossEntropy, StepLR, TrainConfig, evaluate, topk_accuracy, train
from repro.nn.layers import Dense, Parameter
from repro.nn.sequential import Sequential


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss(self):
        loss = SoftmaxCrossEntropy().forward(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 3, 2])
        fn = SoftmaxCrossEntropy()
        fn.forward(logits, labels)
        g = fn.backward()
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                lp, lm = logits.copy(), logits.copy()
                lp[i, j] += eps
                lm[i, j] -= eps
                num = (
                    SoftmaxCrossEntropy().forward(lp, labels)
                    - SoftmaxCrossEntropy().forward(lm, labels)
                ) / (2 * eps)
                assert g[i, j] == pytest.approx(num, abs=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((4, 3, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((4, 3)), np.zeros(5, dtype=int))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestTopK:
    def test_top1(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert topk_accuracy(logits, np.array([1, 0]), 1) == 1.0
        assert topk_accuracy(logits, np.array([0, 1]), 1) == 0.0

    def test_top5_with_few_classes(self):
        logits = np.array([[0.1, 0.9]])
        assert topk_accuracy(logits, np.array([0]), 5) == 1.0

    def test_topk_partial(self):
        logits = np.array([[5.0, 4.0, 3.0, 2.0, 1.0, 0.0]])
        assert topk_accuracy(logits, np.array([4]), 5) == 1.0
        assert topk_accuracy(logits, np.array([5]), 5) == 0.0

    def test_empty(self):
        assert topk_accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int), 1) == 0.0


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        p.add_grad(np.array([0.5], dtype=np.float32))
        SGD([p], lr=0.1, momentum=0.0).step()
        assert p.data[0] == pytest.approx(0.95)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.5)
        for _ in range(2):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        # step1: v=1 -> p=-1; step2: v=1.5 -> p=-2.5
        assert p.data[0] == pytest.approx(-2.5)

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        p.grad = np.array([0.0], dtype=np.float32)
        SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5).step()
        assert p.data[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_skips_gradless_params(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)


class TestStepLR:
    def test_decay_schedule(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)


class TestTrainLoop:
    def test_learns_linearly_separable_task(self, rng):
        m = Sequential([("d", Dense(4, 2, rng=rng))])
        x = rng.normal(size=(400, 4)).astype(np.float32)
        y = (x @ np.array([1.0, -1.0, 0.5, 0.0]) > 0).astype(int)
        losses = train(m, x, y, TrainConfig(epochs=10, batch_size=32, lr=0.2))
        assert losses[-1] < losses[0] * 0.5
        assert evaluate(m, x, y).top1 > 0.9

    def test_losses_length(self, rng):
        m = Sequential([("d", Dense(3, 2, rng=rng))])
        x = rng.normal(size=(16, 3)).astype(np.float32)
        y = rng.integers(0, 2, size=16)
        assert len(train(m, x, y, TrainConfig(epochs=3, batch_size=8))) == 3
