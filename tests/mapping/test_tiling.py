"""Layer-to-PE tiling: partition choice and the 8 KB constraint."""

from __future__ import annotations

import pytest

from repro.mapping.tiling import plan_layer
from repro.nn.arch import ArchBuilder


def _fc_layer(in_f=400, out_f=120):
    b = ArchBuilder("t", (1, 1, 1))
    b.set_shape((in_f,))
    b.fc("fc", out_f)
    return b.build().layer("fc")


def _conv_layer(c_in=3, c_out=64, hw=224):
    b = ArchBuilder("t", (c_in, hw, hw))
    b.conv("conv", c_out, 3, pad=1)
    return b.build().layer("conv")


class TestPartitionChoice:
    def test_fc_uses_channel_split(self):
        plan = plan_layer(_fc_layer())
        assert plan.partition == "channel"

    def test_big_ifmap_small_weights_uses_spatial(self):
        # 224x224 conv: ifmap 602 KB vs weights 6.9 KB -> replicate weights
        plan = plan_layer(_conv_layer())
        assert plan.partition == "spatial"

    def test_big_weights_small_ifmap_uses_channel(self):
        # 1x1 conv on a tiny map with many channels
        b = ArchBuilder("t", (512, 4, 4))
        b.conv("conv", 2048, 1)
        plan = plan_layer(b.build().layer("conv"))
        assert plan.partition == "channel"

    def test_partition_minimizes_fetch_volume(self):
        layer = _conv_layer()
        plan = plan_layer(layer)
        w = layer.weight_params * 4
        i = layer.in_activations * 4
        chosen = plan.total_read_bytes
        alternative = w + 12 * i if plan.partition == "spatial" else 12 * w + i
        assert chosen <= alternative * plan.refetch_factor + 1


class TestVolumes:
    def test_channel_split_weight_conservation(self):
        """Per-PE weight fetches sum back to the full tensor (rounded up)."""
        layer = _fc_layer(1000, 1200)
        plan = plan_layer(layer, num_pes=12)
        assert plan.pe.weight_fetch_bytes * 12 >= layer.weight_params * 4
        assert plan.pe.weight_fetch_bytes * 12 < layer.weight_params * 4 + 12 * 4

    def test_macs_conserved(self):
        layer = _fc_layer()
        plan = plan_layer(layer, num_pes=12)
        assert plan.total_macs >= layer.macs

    def test_ofmap_write_volume(self):
        layer = _fc_layer(100, 240)
        plan = plan_layer(layer, num_pes=12)
        assert plan.total_write_bytes == pytest.approx(240 * 4, abs=48)

    def test_pool_layer_moves_activations_only(self):
        b = ArchBuilder("t", (16, 8, 8))
        b.pool("p", 2)
        plan = plan_layer(b.build().layer("p"))
        assert plan.pe.weight_fetch_bytes == 0
        assert plan.pe.ifmap_fetch_bytes > 0
        assert plan.pe.ofmap_bytes > 0


class TestRefetchModels:
    def test_paper_model_is_single_pass(self):
        layer = _conv_layer(c_in=64, c_out=64, hw=224)
        plan = plan_layer(layer, local_mem_bytes=8 * 1024)  # default "paper"
        assert plan.refetch_factor == 1

    def test_small_layer_single_band(self):
        plan = plan_layer(
            _fc_layer(100, 100), local_mem_bytes=8 * 1024, refetch_model="banded"
        )
        assert plan.refetch_factor == 1

    def test_fc_never_refetches(self):
        # FC weights are single-use: stream input tiles against a
        # resident output slice — one pass even under "banded"
        plan = plan_layer(
            _fc_layer(25088, 4096), local_mem_bytes=8 * 1024, refetch_model="banded"
        )
        assert plan.refetch_factor == 1

    def test_huge_conv_operands_force_bands(self):
        layer = _conv_layer(c_in=64, c_out=64, hw=224)
        plan = plan_layer(layer, local_mem_bytes=8 * 1024, refetch_model="banded")
        assert plan.refetch_factor > 1

    def test_more_local_memory_fewer_bands(self):
        layer = _conv_layer(c_in=64, c_out=64, hw=224)
        small = plan_layer(layer, local_mem_bytes=8 * 1024, refetch_model="banded")
        big = plan_layer(layer, local_mem_bytes=256 * 1024, refetch_model="banded")
        assert big.refetch_factor <= small.refetch_factor

    def test_refetch_inflates_stream_traffic(self):
        layer = _conv_layer(c_in=64, c_out=64, hw=224)
        small = plan_layer(layer, local_mem_bytes=8 * 1024, refetch_model="banded")
        big = plan_layer(layer, local_mem_bytes=1024 * 1024, refetch_model="banded")
        assert small.total_read_bytes > big.total_read_bytes

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="refetch_model"):
            plan_layer(_fc_layer(), refetch_model="magic")

    def test_int8_words_shrink_weight_traffic(self):
        layer = _fc_layer(1000, 1000)
        f32 = plan_layer(layer, weight_bytes_per_word=4)
        i8 = plan_layer(layer, weight_bytes_per_word=1)
        assert i8.pe.weight_fetch_bytes * 4 == pytest.approx(
            f32.pe.weight_fetch_bytes, rel=0.01
        )

    def test_num_pes_validation(self):
        with pytest.raises(ValueError):
            plan_layer(_fc_layer(), num_pes=0)
