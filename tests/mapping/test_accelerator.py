"""Accelerator end-to-end: modes, compression effects, model runs."""

from __future__ import annotations

import pytest

from repro.core import compress_percent
from repro.mapping import Accelerator, AcceleratorConfig
from repro.nn import zoo
from repro.nn.arch import ArchBuilder


@pytest.fixture(scope="module")
def acc():
    return Accelerator()


@pytest.fixture(scope="module")
def lenet_spec():
    return zoo.lenet5.full()


def _small_layer():
    b = ArchBuilder("t", (1, 1, 1))
    b.set_shape((400,))
    b.fc("dense_1", 120)
    return b.build().layer("dense_1")


class TestModes:
    def test_flit_and_txn_agree_on_layer(self, acc):
        sched = acc.schedule_layer(_small_layer())
        flit = acc.run_layer(sched, mode="flit")
        txn = acc.run_layer(sched, mode="txn")
        assert txn.latency.total == pytest.approx(flit.latency.total, rel=0.25)
        assert txn.energy.total == pytest.approx(flit.energy.total, rel=0.15)

    def test_unknown_mode(self, acc):
        sched = acc.schedule_layer(_small_layer())
        with pytest.raises(ValueError):
            acc.run_layer(sched, mode="magic")

    def test_event_counts_agree(self, acc):
        sched = acc.schedule_layer(_small_layer())
        flit = acc.run_layer(sched, mode="flit")
        txn = acc.run_layer(sched, mode="txn")
        assert flit.events["main_mem_bytes"] == txn.events["main_mem_bytes"]
        assert flit.events["macs"] == txn.events["macs"]
        assert flit.events["flit_hops"] == pytest.approx(
            txn.events["flit_hops"], rel=0.05
        )


class TestModelRun:
    def test_lenet_layer_coverage(self, acc, lenet_spec):
        res = acc.run_model(lenet_spec, mode="txn")
        names = [l.layer_name for l in res.layers]
        assert "conv2d_1" in names and "dense_1" in names
        assert "flatten" not in names  # no traffic of its own

    def test_memory_dominates_latency(self, acc, lenet_spec):
        """The paper's Fig. 2 headline: main memory is the main
        responsible for inference latency."""
        res = acc.run_model(lenet_spec, mode="txn")
        t = res.total_latency
        assert t.memory > t.communication
        assert t.memory > t.computation

    def test_main_memory_dominates_energy(self, acc, lenet_spec):
        res = acc.run_model(lenet_spec, mode="txn")
        e = res.total_energy
        assert e.component_total("main_mem") > 0.5 * e.total

    def test_compression_reduces_latency_and_energy(self, acc, lenet_spec):
        base = acc.run_model(lenet_spec, mode="txn")
        w = lenet_spec.materialize("dense_1")
        eff = acc.compression_effect(compress_percent(w.ravel(), 15.0))
        comp = acc.run_model(lenet_spec, {"dense_1": eff}, mode="txn")
        assert comp.total_latency.total < base.total_latency.total
        assert comp.total_energy.total < base.total_energy.total

    def test_larger_delta_larger_savings(self, acc, lenet_spec):
        w = lenet_spec.materialize("dense_1").ravel()
        totals = []
        for pct in (0.0, 10.0, 20.0):
            eff = acc.compression_effect(compress_percent(w, pct))
            res = acc.run_model(lenet_spec, {"dense_1": eff}, mode="txn")
            totals.append(res.total_latency.total)
        assert totals == sorted(totals, reverse=True)

    def test_unknown_compressed_layer_rejected(self, acc, lenet_spec):
        w = lenet_spec.materialize("dense_1").ravel()
        eff = acc.compression_effect(compress_percent(w, 5.0))
        with pytest.raises(ValueError, match="unknown layers"):
            acc.run_model(lenet_spec, {"nope": eff})

    def test_flit_mode_full_lenet(self, acc, lenet_spec):
        """Cycle-accurate run of the whole LeNet-5 (the Fig. 2 workload)."""
        res = acc.run_model(lenet_spec, mode="flit")
        assert len(res.layers) == 7
        assert res.total_latency.total > 0
        # dense_1 carries ~78% of the params -> the largest layer latency
        by_name = {l.layer_name: l.latency.total for l in res.layers}
        assert max(by_name, key=by_name.get) == "dense_1"


class TestDecompressorThroughputAblation:
    def test_single_unit_can_bottleneck(self, lenet_spec):
        """With one decompressor per PE the datapath may slow down; with
        eight (one per lane) compression is a pure win."""
        w = lenet_spec.materialize("dense_1").ravel()
        stream = compress_percent(w, 15.0)
        fast = Accelerator(AcceleratorConfig(decompressor_units=8))
        slow = Accelerator(AcceleratorConfig(decompressor_units=1))
        r_fast = fast.run_model(lenet_spec, {"dense_1": fast.compression_effect(stream)}, mode="txn")
        r_slow = slow.run_model(lenet_spec, {"dense_1": slow.compression_effect(stream)}, mode="txn")
        assert r_slow.total_latency.computation >= r_fast.total_latency.computation


class TestDemandModeAccelerator:
    def test_demand_mode_runs_and_costs_more(self, lenet_spec):
        static = Accelerator(AcceleratorConfig(demand_mode=False))
        demand = Accelerator(AcceleratorConfig(demand_mode=True))
        t_static = static.run_model(lenet_spec, mode="flit").total_latency.total
        t_demand = demand.run_model(lenet_spec, mode="flit").total_latency.total
        assert t_demand > t_static
        assert t_demand < 2.5 * t_static

    def test_demand_mode_moves_same_payload(self, lenet_spec):
        static = Accelerator(AcceleratorConfig(demand_mode=False))
        demand = Accelerator(AcceleratorConfig(demand_mode=True))
        e_static = static.run_model(lenet_spec, mode="flit")
        e_demand = demand.run_model(lenet_spec, mode="flit")
        # same MACs; memory bytes differ only by the lost shared-read
        # optimization (demand requests are per PE)
        s = sum(l.events["macs"] for l in e_static.layers)
        d = sum(l.events["macs"] for l in e_demand.layers)
        assert s == d


class TestDefaultConfigIsolation:
    """Regression: default-constructed accelerators must not share one
    ``AcceleratorConfig`` instance (the B008 evaluated-once-at-import
    pattern), or mutating one instance's view of the config would leak
    into every other default-constructed accelerator."""

    def test_each_instance_gets_its_own_config(self):
        a, b = Accelerator(), Accelerator()
        assert a.config is not b.config
        assert a.config.dram is not b.config.dram
        assert a.config.pe is not b.config.pe
        assert a.config == b.config  # same values, distinct objects

    def test_explicit_config_is_kept(self):
        cfg = AcceleratorConfig(mesh_width=2, mesh_height=2)
        assert Accelerator(cfg).config is cfg
