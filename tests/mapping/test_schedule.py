"""Traffic schedules and the compression effect."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compress_percent
from repro.mapping.schedule import CompressionEffect, build_schedule
from repro.noc import Mesh, TrafficClass
from repro.nn.arch import ArchBuilder


def _fc_layer(in_f=400, out_f=1200):
    b = ArchBuilder("t", (1, 1, 1))
    b.set_shape((in_f,))
    b.fc("dense_1", out_f)
    return b.build().layer("dense_1")


class TestBuildSchedule:
    def test_every_pe_gets_work(self):
        sched = build_schedule(_fc_layer(), Mesh(4, 4))
        assert set(sched.pe_work) == set(Mesh(4, 4).pe_ids())

    def test_transfers_target_nearest_corner(self):
        mesh = Mesh(4, 4)
        sched = build_schedule(_fc_layer(), mesh)
        for t in sched.transfers:
            assert t.mc == mesh.nearest_corner(t.pe)

    def test_fig1_traffic_classes_present(self):
        sched = build_schedule(_fc_layer(), Mesh(4, 4))
        classes = {t.traffic_class for t in sched.transfers}
        assert classes == {TrafficClass.WEIGHTS, TrafficClass.IFMAP}
        assert sched.total_write_bytes > 0

    def test_totals_match_plan(self):
        sched = build_schedule(_fc_layer(), Mesh(4, 4))
        assert sched.total_read_bytes == sched.plan.total_read_bytes
        assert sched.total_write_bytes == sched.plan.total_write_bytes

    def test_dram_reads_preserve_private_bytes(self):
        sched = build_schedule(_fc_layer(4000, 4000), Mesh(4, 4))
        jobs = sched.dram_reads(chunk=2048)
        weights = [j for j in jobs if j.traffic_class is TrafficClass.WEIGHTS]
        # weights are private: one copy per PE, volumes preserved
        assert sum(j.nbytes for j in weights) == sum(
            t.nbytes for t in sched.transfers
            if t.traffic_class is TrafficClass.WEIGHTS
        )
        assert max(j.nbytes for j in jobs) <= 2048

    def test_shared_ifmap_read_once_per_mc(self):
        mesh = Mesh(4, 4)
        sched = build_schedule(_fc_layer(4000, 4000), mesh)
        assert sched.shared_class is TrafficClass.IFMAP
        ifmap_jobs = [
            j for j in sched.dram_reads(chunk=1 << 62)
            if j.traffic_class is TrafficClass.IFMAP
        ]
        # one grouped job per memory interface, fanning out to its PEs
        assert len(ifmap_jobs) == 4
        assert sorted(len(j.dsts) for j in ifmap_jobs) == [3, 3, 3, 3]
        # DRAM volume = 4 reads; NoC volume = 12 copies
        dram = sum(j.nbytes for j in ifmap_jobs)
        noc = sum(
            t.nbytes for t in sched.transfers
            if t.traffic_class is TrafficClass.IFMAP
        )
        assert noc == 3 * dram


class TestCompressionEffect:
    def _effect(self, delta=10.0, units=8):
        w = np.random.default_rng(0).normal(size=40_000).astype(np.float32)
        return CompressionEffect.from_stream(
            compress_percent(w, delta), units_per_pe=units
        ), w

    def test_weight_traffic_shrinks_by_cr(self):
        layer = _fc_layer(400, 1200)
        base = build_schedule(layer, Mesh(4, 4))
        eff, _ = self._effect(delta=15.0)
        comp = build_schedule(layer, Mesh(4, 4), compression=eff)
        base_w = [t for t in base.transfers if t.traffic_class is TrafficClass.WEIGHTS]
        comp_w = [t for t in comp.transfers if t.traffic_class is TrafficClass.WEIGHTS]
        ratio = sum(t.nbytes for t in base_w) / sum(t.nbytes for t in comp_w)
        assert ratio == pytest.approx(eff.cr, rel=0.01)

    def test_ifmap_traffic_unchanged(self):
        layer = _fc_layer(400, 1200)
        base = build_schedule(layer, Mesh(4, 4))
        eff, _ = self._effect()
        comp = build_schedule(layer, Mesh(4, 4), compression=eff)
        get = lambda s: sum(
            t.nbytes for t in s.transfers if t.traffic_class is TrafficClass.IFMAP
        )
        assert get(base) == get(comp)

    def test_decompress_cycles_appear(self):
        layer = _fc_layer(400, 1200)
        eff, _ = self._effect()
        comp = build_schedule(layer, Mesh(4, 4), compression=eff)
        decomp = {w[4] for w in comp.pe_work.values()}
        assert decomp != {0}

    def test_more_units_fewer_cycles(self):
        eff1 = CompressionEffect(cr=2.0, segments_total=1000, units_per_pe=1)
        eff8 = CompressionEffect(cr=2.0, segments_total=1000, units_per_pe=8)
        assert eff8.decompress_cycles(8000, 100) < eff1.decompress_cycles(8000, 100)
        assert eff1.decompress_cycles(8000, 100) == 8000 + 100

    def test_uncompressed_layer_kinds_unaffected(self):
        b = ArchBuilder("t", (16, 8, 8))
        b.pool("p", 2)
        eff = CompressionEffect(cr=4.0, segments_total=10)
        sched = build_schedule(b.build().layer("p"), Mesh(4, 4), compression=eff)
        assert all(w[4] == 0 for w in sched.pe_work.values())


class TestBatching:
    def test_weights_amortized_activations_scale(self):
        layer = _fc_layer(400, 1200)
        one = build_schedule(layer, Mesh(4, 4), batch=1)
        eight = build_schedule(layer, Mesh(4, 4), batch=8)
        get = lambda s, cls: sum(
            t.nbytes for t in s.transfers if t.traffic_class is cls
        )
        assert get(eight, TrafficClass.WEIGHTS) == get(one, TrafficClass.WEIGHTS)
        assert get(eight, TrafficClass.IFMAP) == 8 * get(one, TrafficClass.IFMAP)
        assert eight.total_write_bytes == 8 * one.total_write_bytes

    def test_macs_scale_with_batch(self):
        layer = _fc_layer(400, 1200)
        one = build_schedule(layer, Mesh(4, 4), batch=1)
        four = build_schedule(layer, Mesh(4, 4), batch=4)
        assert four.plan.total_macs == 4 * one.plan.total_macs

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            build_schedule(_fc_layer(), Mesh(4, 4), batch=0)
