"""Ablation harness tests."""
