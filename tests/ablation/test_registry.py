"""Feature registry, Feature validation, and AblationConfig round trips."""

from __future__ import annotations

import json

import pytest

from repro.ablation import (
    IDENTICAL,
    MEASURED,
    AblationConfig,
    AblationError,
    DEFAULT_FEATURES,
    DuplicateFeatureError,
    Feature,
    FeatureRegistry,
    UnknownFeatureError,
)


def _noop_runner(workload: str, on: bool, fast: bool) -> dict:
    return {"x": 1.0}


def _feature(name: str, delta_class: str = IDENTICAL, **kw) -> Feature:
    return Feature(
        name=name,
        delta_class=delta_class,
        description="test feature",
        toggle="test.toggle",
        runner=_noop_runner,
        workloads=kw.pop("workloads", ("w",)),
        **kw,
    )


class TestFeature:
    def test_bad_delta_class_rejected(self):
        with pytest.raises(AblationError, match="delta_class"):
            _feature("f", delta_class="approximate")

    def test_empty_workloads_rejected(self):
        with pytest.raises(AblationError, match="workloads"):
            _feature("f", workloads=())


class TestRegistry:
    def test_register_and_get(self):
        reg = FeatureRegistry()
        f = reg.register(_feature("a.x"))
        assert reg.get("a.x") is f
        assert "a.x" in reg
        assert len(reg) == 1

    def test_collision_raises(self):
        reg = FeatureRegistry()
        reg.register(_feature("a.x"))
        with pytest.raises(DuplicateFeatureError, match="a.x"):
            reg.register(_feature("a.x"))

    def test_unknown_feature_raises(self):
        reg = FeatureRegistry()
        reg.register(_feature("a.x"))
        with pytest.raises(UnknownFeatureError, match="b.y"):
            reg.get("b.y")
        # reads as a sentence, not KeyError's quoted repr
        try:
            reg.get("b.y")
        except UnknownFeatureError as exc:
            assert str(exc).startswith("unknown feature")

    def test_unknown_feature_is_key_error(self):
        with pytest.raises(KeyError):
            FeatureRegistry().get("nope")

    def test_names_sorted_and_class_filter(self):
        reg = FeatureRegistry()
        reg.register(_feature("b.y", MEASURED))
        reg.register(_feature("a.x", IDENTICAL))
        assert reg.names() == ["a.x", "b.y"]
        assert [f.name for f in reg.features(IDENTICAL)] == ["a.x"]
        assert [f.name for f in reg.features(MEASURED)] == ["b.y"]
        assert [f.name for f in reg] == ["a.x", "b.y"]
        with pytest.raises(AblationError, match="delta_class"):
            reg.features("bogus")


class TestConfig:
    def test_json_round_trip(self):
        cfg = AblationConfig(
            features=("a.x", "b.y"),
            workloads=("gaussian",),
            fast=True,
            extra={"note": "nightly"},
        )
        back = AblationConfig.from_json(cfg.to_json())
        assert back == cfg
        # and the payload is plain JSON
        doc = json.loads(cfg.to_json())
        assert doc["features"] == ["a.x", "b.y"]

    def test_from_json_rejects_garbage(self):
        with pytest.raises(AblationError, match="unparseable"):
            AblationConfig.from_json("{nope")
        with pytest.raises(AblationError, match="object"):
            AblationConfig.from_json("[1, 2]")
        with pytest.raises(AblationError, match="unknown config keys"):
            AblationConfig.from_json('{"featuers": []}')

    def test_validate_unknown_feature(self):
        reg = FeatureRegistry()
        reg.register(_feature("a.x"))
        AblationConfig(features=("a.x",)).validate(reg)
        with pytest.raises(UnknownFeatureError):
            AblationConfig(features=("a.x", "zz")).validate(reg)

    def test_selected_defaults_to_all(self):
        reg = FeatureRegistry()
        reg.register(_feature("b.y"))
        reg.register(_feature("a.x"))
        assert [f.name for f in AblationConfig().selected(reg)] == ["a.x", "b.y"]
        assert [
            f.name for f in AblationConfig(features=("b.y",)).selected(reg)
        ] == ["b.y"]


class TestDefaultRegistry:
    def test_covers_both_classes_broadly(self):
        """The shipped registry feature-flags the major design choices:
        at least 6 features (the fig_ablation acceptance floor), with
        both delta classes populated."""
        assert len(DEFAULT_FEATURES) >= 8
        identical = DEFAULT_FEATURES.features(IDENTICAL)
        measured = DEFAULT_FEATURES.features(MEASURED)
        assert len(identical) >= 4
        assert len(measured) >= 4
        subsystems = {name.split(".")[0] for name in DEFAULT_FEATURES.names()}
        assert {"core", "noc", "runtime", "mapping"} <= subsystems

    def test_runners_are_module_level(self):
        """Pool and shard workers resolve runners by pickling — every
        registered runner must be an importable module-level callable."""
        import importlib

        for f in DEFAULT_FEATURES:
            mod = importlib.import_module(f.runner.__module__)
            assert getattr(mod, f.runner.__qualname__) is f.runner
