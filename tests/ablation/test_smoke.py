"""Tier-1 zero-delta smoke: the identical class stays bitwise zero.

This is the correctness net pinned into the default test run: every
``identical``-class feature — cycle-skip fast path over a tiny LeNet
layer, result cache, streamed decode, CRC framing, the vectorized
segmenter — is toggled on a reduced workload and its delta table is
asserted bitwise zero.  A failure here is a real bug in the toggled
subsystem, not a flaky measurement (see the ``core.storage_format``
wire-format bug this harness surfaced).
"""

from __future__ import annotations

from repro.ablation import (
    DEFAULT_FEATURES,
    IDENTICAL,
    AblationConfig,
    run_ablation,
)


def test_identical_class_is_bitwise_zero():
    names = tuple(f.name for f in DEFAULT_FEATURES.features(IDENTICAL))
    assert "noc.cycle_skip" in names  # the tiny-LeNet-layer NoC arm
    report = run_ablation(AblationConfig(features=names, fast=True), jobs=1)
    report.check_identical()  # raises IdenticalDeltaViolation on any delta
    assert report.rows, "smoke must compare at least one metric row"
    assert all(r.delta_class == IDENTICAL for r in report.rows)
    assert {r.feature for r in report.rows} == set(names)
