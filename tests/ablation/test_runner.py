"""The ablation runner: delta tables, the zero-delta net, serialization.

Fake-feature registries exercise the runner mechanics cheaply and
deterministically; the serial == sharded identity test rides the real
default registry (only registered features resolve by name inside
shard workers).
"""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.ablation import (
    IDENTICAL,
    MEASURED,
    AblationConfig,
    AblationError,
    Feature,
    FeatureRegistry,
    IdenticalDeltaViolation,
    run_ablation,
)
from repro.runtime import ResultCache


# -- fake runners (module-level: mirrors the picklability convention) --------


def run_stable(workload: str, on: bool, fast: bool) -> dict:
    return {"value": 42.0, "digest": "abcd" * 8}


def run_leaky(workload: str, on: bool, fast: bool) -> dict:
    return {"value": 1.0 if on else 2.0, "digest": "on" if on else "off"}


def run_shifted(workload: str, on: bool, fast: bool) -> dict:
    return {"cr": 1.5 if on else 1.2, "mse": 0.1}


def run_mismatched(workload: str, on: bool, fast: bool) -> dict:
    return {"a": 1.0} if on else {"b": 1.0}


def run_empty(workload: str, on: bool, fast: bool) -> dict:
    return {}


def _registry(*features: Feature) -> FeatureRegistry:
    reg = FeatureRegistry()
    for f in features:
        reg.register(f)
    return reg


def _fake(name: str, runner, delta_class: str = IDENTICAL, **kw) -> Feature:
    return Feature(
        name=name,
        delta_class=delta_class,
        description="fake",
        toggle="fake.toggle",
        runner=runner,
        workloads=kw.pop("workloads", ("w0",)),
        **kw,
    )


class TestDeltaTable:
    def test_identical_feature_passes(self):
        reg = _registry(_fake("ok.f", run_stable))
        report = run_ablation(registry=reg)
        report.check_identical()
        assert report.violations() == []
        assert {r.metric for r in report.rows} == {"value", "digest"}
        assert all(r.identical for r in report.rows)

    def test_identical_violation_raises_naming_the_row(self):
        reg = _registry(_fake("leak.f", run_leaky))
        report = run_ablation(registry=reg)
        assert len(report.violations()) == 2
        with pytest.raises(IdenticalDeltaViolation, match=r"leak\.f\[w0\]"):
            report.check_identical()

    def test_measured_deltas_do_not_violate(self):
        reg = _registry(_fake("m.f", run_shifted, MEASURED))
        report = run_ablation(registry=reg)
        report.check_identical()  # measured rows never violate
        by_metric = {r.metric: r for r in report.rows}
        assert by_metric["cr"].delta == pytest.approx(1.2 - 1.5)
        assert by_metric["mse"].delta == 0.0
        assert by_metric["mse"].identical

    def test_default_off_feature_baselines_on_off(self):
        reg = _registry(
            _fake("off.f", run_leaky, MEASURED, default_on=False)
        )
        report = run_ablation(registry=reg)
        row = {r.metric: r for r in report.rows}["value"]
        assert row.baseline == 2.0  # default_on=False: baseline is off
        assert row.variant == 1.0

    def test_mismatched_metric_keys_raise(self):
        reg = _registry(_fake("bad.f", run_mismatched, MEASURED))
        with pytest.raises(AblationError, match="mismatched"):
            run_ablation(registry=reg)

    def test_empty_metrics_raise(self):
        reg = _registry(_fake("empty.f", run_empty))
        with pytest.raises(AblationError, match="non-empty"):
            run_ablation(registry=reg)

    def test_workload_filter(self):
        reg = _registry(
            _fake("f.a", run_stable, workloads=("w0", "w1", "w2"))
        )
        report = run_ablation(
            AblationConfig(workloads=("w1",)), registry=reg
        )
        assert {r.workload for r in report.rows} == {"w1"}


class TestReportSerialization:
    def _report(self):
        reg = _registry(
            _fake("a.f", run_stable),
            _fake("b.f", run_shifted, MEASURED),
        )
        return run_ablation(registry=reg)

    def test_digest_is_deterministic(self):
        assert self._report().digest() == self._report().digest()

    def test_json_parses_with_counts(self):
        doc = json.loads(self._report().to_json())
        assert doc["violations"] == 0
        assert len(doc["rows"]) == 4
        assert len(doc["costs"]) == 2
        assert {c["feature"] for c in doc["costs"]} == {"a.f", "b.f"}
        assert all(c["baseline_seconds"] >= 0 for c in doc["costs"])

    def test_csv_parses(self):
        rows = list(csv.DictReader(io.StringIO(self._report().to_csv())))
        assert len(rows) == 4
        assert rows[0]["feature"] == "a.f"
        assert {r["identical"] for r in rows} <= {"0", "1"}

    def test_markdown_renders_every_row(self):
        report = self._report()
        md = report.render()
        lines = md.splitlines()
        assert len(lines) == 2 + len(report.rows)
        assert "0 (bitwise)" in md  # the digest metric of a.f

    def test_write_artifacts(self, tmp_path):
        out = self._report().write(tmp_path / "abl")
        assert json.loads((out / "ablation.json").read_text())["rows"]
        assert (out / "ablation.csv").read_text().startswith("feature,")
        assert (out / "ablation.md").read_text().startswith("| feature")


class TestSerialShardedIdentity:
    def test_serial_equals_sharded(self, tmp_path):
        """The same config, run serially and on the sharded runtime,
        must produce byte-identical delta tables (digest compares the
        metric rows; wall-time costs legitimately differ)."""
        cfg = AblationConfig(
            features=("core.segmenter", "core.monotonicity"),
            workloads=("gaussian", "adversarial"),
            fast=True,
        )
        serial = run_ablation(cfg, jobs=1)
        cache = ResultCache(root=tmp_path / "cache", enabled=True)
        sharded = run_ablation(cfg, cache=cache, shards=3, shard_workers=2)
        assert serial.digest() == sharded.digest()
        # and a warm re-run out of the cache is still identical
        rewarm = run_ablation(cfg, cache=cache, shards=3)
        assert rewarm.digest() == serial.digest()
