"""Synthetic datasets: determinism, label balance, learnability signals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SynthImageConfig,
    batches,
    dataset_for_input,
    make_digits,
    make_synth_images,
    render_digit,
    train_test,
)


class TestDigits:
    def test_shapes_and_range(self):
        x, y = make_digits(20, seed=0)
        assert x.shape == (20, 1, 28, 28)
        assert x.dtype == np.float32
        assert x.min() >= 0.0 and x.max() <= 1.0
        assert y.shape == (20,)

    def test_deterministic(self):
        x1, y1 = make_digits(10, seed=5)
        x2, y2 = make_digits(10, seed=5)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_seed_changes_samples(self):
        x1, _ = make_digits(10, seed=0)
        x2, _ = make_digits(10, seed=1)
        assert not np.array_equal(x1, x2)

    def test_label_balance(self):
        _, y = make_digits(1000, seed=0)
        counts = np.bincount(y, minlength=10)
        assert counts.min() >= 90

    def test_channels_replicated(self):
        x, _ = make_digits(4, seed=0, channels=3)
        assert x.shape[1] == 3
        np.testing.assert_array_equal(x[:, 0], x[:, 1])

    def test_invalid_digit(self, rng):
        with pytest.raises(ValueError):
            render_digit(10, rng)

    def test_classes_are_distinguishable(self):
        """Mean images of different digits differ substantially."""
        means = {}
        for d in range(10):
            rng = np.random.default_rng(99)
            imgs = [render_digit(d, rng) for _ in range(20)]
            means[d] = np.mean(imgs, axis=0)
        d01 = np.abs(means[0] - means[1]).mean()
        assert d01 > 0.05


class TestSynthImages:
    def test_shapes(self):
        x, y = make_synth_images(12, SynthImageConfig(num_classes=4, size=16))
        assert x.shape == (12, 3, 16, 16)
        assert int(y.max()) <= 3

    def test_deterministic(self):
        cfg = SynthImageConfig(size=16)
        x1, _ = make_synth_images(6, cfg, seed=3)
        x2, _ = make_synth_images(6, cfg, seed=3)
        np.testing.assert_array_equal(x1, x2)

    def test_within_class_more_similar_than_between(self):
        cfg = SynthImageConfig(size=16, noise=0.2)
        x, y = make_synth_images(200, cfg, seed=0)
        a = x[y == 0]
        b = x[y == 1]
        within = np.mean([np.abs(a[i] - a[j]).mean() for i in range(5) for j in range(5, 10)])
        between = np.mean([np.abs(a[i] - b[j]).mean() for i in range(5) for j in range(5)])
        assert between > within


class TestLoaders:
    def test_split_shapes(self):
        s = train_test("digits", 50, 20, seed=0)
        assert len(s.x_train) == 50 and len(s.x_test) == 20
        assert s.num_classes == 10

    def test_train_and_test_disjoint_noise(self):
        s = train_test("digits", 10, 10, seed=0)
        assert not np.array_equal(s.x_train, s.x_test)

    def test_synth_split_shares_classes(self):
        """A nearest-prototype classifier fit on train transfers to test."""
        cfg = SynthImageConfig(size=16, noise=0.15)
        s = train_test("synth", 300, 100, seed=2, config=cfg)
        protos = np.stack(
            [s.x_train[s.y_train == c].mean(axis=0) for c in range(cfg.num_classes)]
        )
        dists = np.array(
            [[np.abs(img - p).mean() for p in protos] for img in s.x_test]
        )
        acc = (dists.argmin(axis=1) == s.y_test).mean()
        assert acc > 0.5  # far above the 0.1 chance level

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            train_test("nope", 1, 1)

    def test_batches_cover_everything(self):
        x = np.arange(10)[:, None]
        y = np.arange(10)
        got = np.concatenate([by for _, by in batches(x, y, 3)])
        np.testing.assert_array_equal(np.sort(got), y)

    def test_batches_shuffled(self):
        x = np.arange(100)[:, None]
        y = np.arange(100)
        got = np.concatenate([by for _, by in batches(x, y, 10, seed=1)])
        assert not np.array_equal(got, y)
        np.testing.assert_array_equal(np.sort(got), y)

    def test_dataset_for_input_grayscale(self):
        s = dataset_for_input((1, 28, 28), 10, 5)
        assert s.x_train.shape[1:] == (1, 28, 28)

    def test_dataset_for_input_rgb(self):
        s = dataset_for_input((3, 32, 32), 10, 5)
        assert s.x_train.shape[1:] == (3, 32, 32)
