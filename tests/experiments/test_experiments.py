"""Experiment harness: the cheap artifacts run end to end in test time.

The heavy artifacts (Tab. II full sweep, Fig. 10, Tab. III) are
exercised by the benchmark harness; here we cover the harness machinery
and the fast paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    fig2_breakdown,
    fig3_entropy,
    fig_scale_matrix,
    table1_layers,
    table2_compression,
)
from repro.experiments.common import proxy_dataset, trained_proxy
from repro.nn import zoo


class TestRegistry:
    def test_all_artifacts_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig2", "fig3", "tab1", "tab2", "fig9", "fig10", "tab3",
            "fig_fault_campaign", "fig_scale_matrix", "fig_ablation",
        }

    def test_every_experiment_has_run_and_render(self):
        for module in ALL_EXPERIMENTS.values():
            assert callable(module.run) and callable(module.render)


class TestTable1:
    def test_rows_cover_all_models(self):
        rows = table1_layers.run()
        assert [r.model for r in rows] == [m.NAME for m in zoo.ALL_MODELS]

    def test_render_contains_paper_columns(self):
        text = table1_layers.render(table1_layers.run())
        assert "dense_1" in text and "conv_preds" in text and "(paper)" in text


class TestFig3:
    def test_ordering(self):
        result = fig3_entropy.run(fast=True)
        assert result["random"] > result["LeNet-5"] > result["text"]

    def test_render(self):
        text = fig3_entropy.render(fig3_entropy.run(fast=True))
        assert "bits/byte" in text


class TestFig2:
    def test_fast_mode_runs_txn(self):
        result = fig2_breakdown.run(fast=True)
        assert len(result.layers) == 7
        text = fig2_breakdown.render(result)
        assert "Fig. 2a" in text and "Fig. 2b" in text


class TestScaleMatrix:
    def test_fast_matrix_compression_wins_on_every_topology(self):
        points = fig_scale_matrix.run(fast=True)
        base = {p.scenario: p.result for p in points if p.delta_pct is None}
        assert set(base) == set(fig_scale_matrix.SCENARIOS)
        for p in points:
            if p.delta_pct is None:
                continue
            b = base[p.scenario]
            assert p.result.total_latency.total < b.total_latency.total
            assert p.result.total_energy.total < b.total_energy.total

    def test_comm_share_grows_with_mesh_size(self):
        points = fig_scale_matrix.run(fast=True)
        share = {
            p.scenario: p.result.total_latency.communication
            / p.result.total_latency.total
            for p in points
            if p.delta_pct is None
        }
        assert share["mesh-4x4"] < share["mesh-8x8"] < share["mesh-16x16"]

    def test_render(self):
        text = fig_scale_matrix.render(fig_scale_matrix.run(fast=True))
        assert "mesh-16x16" in text and "chiplet-3x3" in text


class TestTable2Fast:
    def test_lenet_sweep_matches_paper_band(self):
        sweep = table2_compression.sweep_model(zoo.lenet5, fast=True)
        crs = {r.delta_pct: r.cr for r in sweep.reports}
        paper = table2_compression.PAPER["LeNet-5"]
        for delta, cr in crs.items():
            assert cr == pytest.approx(paper[delta][0], rel=0.30)

    def test_sliced_evaluation_keeps_whole_model_accounting(self):
        sweep = table2_compression.sweep_model(zoo.resnet50, fast=True)
        for r in sweep.reports:
            assert r.weighted_cr < r.cr
            assert 0 <= r.mem_fp_reduction < 0.15  # fc1000 is only 8%


class TestCommonInfra:
    def test_dataset_shapes(self):
        split = proxy_dataset("VGG-16", fast=True)
        assert split.x_train.shape[1:] == (3, 32, 32)
        assert split.num_classes == 50

    def test_lenet_dataset_is_digits(self):
        split = proxy_dataset("LeNet-5", fast=True)
        assert split.x_train.shape[1:] == (1, 28, 28)
        assert split.num_classes == 10

    def test_trained_proxy_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        m1, _ = trained_proxy(zoo.lenet5, seed=3, fast=True)
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        m2, _ = trained_proxy(zoo.lenet5, seed=3, fast=True)
        np.testing.assert_array_equal(
            m1.get_weights("dense_1"), m2.get_weights("dense_1")
        )

    def test_trained_proxy_accuracy_floor(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        model, split = trained_proxy(zoo.lenet5, seed=3, fast=True)
        from repro.nn.train import evaluate

        assert evaluate(model, split.x_test, split.y_test).top1 > 0.8


class TestCLI:
    def test_cli_runs_tab1(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "tab1"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "Tab. I" in result.stdout

    def test_cli_rejects_unknown(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "nope"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2
        assert "unknown experiments" in result.stdout


class TestFig10Rendering:
    def _fake_results(self):
        from repro.experiments.fig10_tradeoff import ModelTradeoff, TradeoffPoint

        points = [
            TradeoffPoint(
                delta_pct=d,
                accuracy=1.0 - d / 100,
                norm_latency=1.0 - d / 40,
                norm_energy=1.0 - d / 30,
                latency_parts={"memory": 0.5, "communication": 0.2, "computation": 0.1},
                energy_parts={"main_mem (dyn)": 0.6},
            )
            for d in (0.0, 10.0)
        ]
        return [
            ModelTradeoff(
                model="Toy", layer="dense_1", baseline_accuracy=1.0, points=points
            )
        ]

    def test_summary_table(self):
        from repro.experiments import fig10_tradeoff

        text = fig10_tradeoff.render(self._fake_results())
        assert "Toy" in text and "x-10" in text and "pareto" in text

    def test_detail_bars(self):
        from repro.experiments import fig10_tradeoff

        text = fig10_tradeoff.render_detail(self._fake_results())
        assert "latency breakdown" in text and "energy breakdown" in text


class TestBestStateRestore:
    """Regression: the best-stage snapshot must carry BN buffers.

    A staged-LR run whose final stage *degrades* restores the best
    stage's parameters; batch-norm running statistics estimated under
    those parameters must come back with them, not stay at the values
    the worse final stage left behind.
    """

    class _Module:
        NAME = "LeNet-5"  # reuse the real proxy dataset
        TOP_K = 1
        PROXY_LR = 0.05
        PROXY_EPOCHS = 1

        @staticmethod
        def proxy(rng=None):
            from repro.nn.layers import Conv2D
            from repro.nn.layers.norm import BatchNorm2D
            from repro.nn.sequential import Sequential

            rng = rng or np.random.default_rng(0)
            return Sequential(
                [
                    ("conv_1", Conv2D(1, 2, 3, rng=rng)),
                    ("bn_1", BatchNorm2D(2, name="bn_1")),
                ]
            )

    def test_degrading_final_stage_restores_bn_buffers(self, monkeypatch):
        from repro.experiments import common
        from repro.nn.layers.norm import BatchNorm2D
        from repro.nn.train import EvalResult

        # Stage 1 reaches 0.5 (the best); stage 2 converges lower
        # (prev > 4*chance, improvement < 0.02) and ends the schedule.
        accs = iter([0.5, 0.35])
        stage = {"n": 0}

        def fake_train(model, x, y, cfg):
            stage["n"] += 1
            for p in model.params():
                p.data[...] = float(stage["n"])
            for layer in model.layers():
                for arr in layer.buffers().values():
                    arr[...] = float(stage["n"])

        def fake_evaluate(model, x, y, batch_size=128):
            return EvalResult(top1=next(accs), top5=1.0, n=1)

        monkeypatch.setattr(common, "train", fake_train)
        monkeypatch.setattr(common, "evaluate", fake_evaluate)

        model, _ = common.trained_proxy(self._Module, seed=0, fast=True, use_cache=False)

        assert stage["n"] == 2  # both stages ran, second was worse
        bn = next(l for l in model.layers() if isinstance(l, BatchNorm2D))
        np.testing.assert_array_equal(bn.gamma.data, 1.0)
        # the bug: params were restored but buffers kept stage-2 values
        np.testing.assert_array_equal(bn.running_mean, 1.0)
        np.testing.assert_array_equal(bn.running_var, 1.0)
