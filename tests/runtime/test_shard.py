"""The sharded, resumable sweep runtime.

The contract under test, end to end: any number of workers (threads of
control in one process, forked helpers, or independent OS processes
sharing a cache dir) drain a keyed grid cooperatively and converge to
*exactly* the serial result set — same ordered results, byte-identical
cache entries — with every shard executed under a lease that a dead
worker loses exactly once, and per-shard observability that merges
commutatively.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing as mp
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs import MetricsRegistry, is_time_metric
from repro.runtime import GridTask, ResultCache, Timings, result_key, run_tasks
from repro.runtime.shard import (
    LeaseManager,
    ShardStore,
    grid_id,
    run_sharded,
    shard_ranges,
    work_loop,
)

SRC = Path(__file__).resolve().parents[2] / "src"


# -- module-level grid points (picklable, deterministic) ---------------------


def _counting_point(i: int) -> dict:
    o = obs.current()
    o.count("task.calls")
    o.count("task.value_total", i * i)
    o.observe("task.batch_seconds", 0.001)  # time metric: excluded from identity
    return {"i": i, "sq": i * i}


def _grid(n: int) -> list[GridTask]:
    return [
        GridTask(fn=_counting_point, args=(i,), key=result_key("shard-test", i=i))
        for i in range(n)
    ]


def _blocked_point(i: int, flag_dir: str) -> int:
    """Signals it started, then blocks until the ``go`` sentinel exists."""
    flags = Path(flag_dir)
    (flags / f"started-{i}").touch()
    deadline = time.monotonic() + 60
    while not (flags / "go").exists():
        if time.monotonic() > deadline:
            raise TimeoutError("go sentinel never appeared")
        time.sleep(0.01)
    return i * i


def _crash_grid(n: int, flag_dir: str) -> list[GridTask]:
    return [
        GridTask(
            fn=_blocked_point,
            args=(i, flag_dir),
            key=result_key("shard-crash-test", i=i, flags=flag_dir),
        )
        for i in range(n)
    ]


def _crash_worker(
    n: int, flag_dir: str, cache_root: str, worker: str, ttl: float
) -> None:
    tasks = _crash_grid(n, flag_dir)
    store = ShardStore(Path(cache_root) / "shards" / grid_id(tasks))
    work_loop(
        tasks,
        shard_ranges(len(tasks), len(tasks)),
        store,
        ResultCache(root=cache_root, enabled=True),
        worker=worker,
        lease_ttl=ttl,
        poll=0.05,
    )


def _entry_bytes(root: Path) -> dict[str, bytes]:
    """Relative path -> raw bytes of every cache entry under ``root``."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(Path(root).glob("??/*.json"))
    }


# -- partition + identity helpers --------------------------------------------


class TestShardRanges:
    def test_covers_every_index_once(self):
        for n, s in [(10, 3), (7, 7), (5, 16), (1, 1), (16, 4)]:
            ranges = shard_ranges(n, s)
            seen = [i for start, stop in ranges for i in range(start, stop)]
            assert seen == list(range(n))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [stop - start for start, stop in shard_ranges(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_count_clamped_to_tasks(self):
        assert len(shard_ranges(3, 16)) == 3
        assert len(shard_ranges(0, 4)) == 1  # one empty range


class TestGridId:
    def test_requires_keys(self):
        with pytest.raises(ValueError, match="no cache key"):
            grid_id([GridTask(fn=_counting_point, args=(0,))])

    def test_stable_and_order_sensitive(self):
        tasks = _grid(4)
        assert grid_id(tasks) == grid_id(_grid(4))
        assert grid_id(tasks) != grid_id(list(reversed(tasks)))


# -- lease protocol ----------------------------------------------------------


class TestLeases:
    def test_exactly_one_claimer(self, tmp_path):
        store = ShardStore(tmp_path)
        a = LeaseManager(store, "a", ttl=30)
        b = LeaseManager(store, "b", ttl=30)
        try:
            assert a.try_claim(0)
            assert not b.try_claim(0)
            a.release(0)
            assert b.try_claim(0)
        finally:
            a.close()
            b.close()

    def test_heartbeat_keeps_lease_fresh(self, tmp_path):
        store = ShardStore(tmp_path)
        holder = LeaseManager(store, "h", ttl=0.3, heartbeat=0.05)
        watcher = LeaseManager(store, "w", ttl=0.3)
        try:
            assert holder.try_claim(0)
            time.sleep(0.6)  # well past the ttl: only heartbeats save it
            assert not watcher.is_stale(0)
            assert not watcher.reclaim_if_stale(0)
        finally:
            holder.close()
            watcher.close()

    def test_abandoned_lease_goes_stale(self, tmp_path):
        store = ShardStore(tmp_path)
        # a lease written directly, with no manager heartbeating it
        store.lease_path(0).write_text("{}")
        old = time.time() - 10
        os.utime(store.lease_path(0), (old, old))
        watcher = LeaseManager(store, "w", ttl=0.5)
        try:
            assert watcher.is_stale(0)
            assert watcher.reclaim_if_stale(0)
            assert not store.lease_path(0).exists()
            assert len(store.tombs(0)) == 1
            assert watcher.try_claim(0)  # reclaimed shard is claimable
        finally:
            watcher.close()

    def test_reclaim_race_has_one_winner(self, tmp_path):
        store = ShardStore(tmp_path)
        store.lease_path(3).write_text("{}")
        old = time.time() - 10
        os.utime(store.lease_path(3), (old, old))
        managers = [LeaseManager(store, f"w{i}", ttl=0.2) for i in range(8)]
        wins: list[bool] = [False] * len(managers)
        barrier = threading.Barrier(len(managers))

        def race(idx):
            barrier.wait()
            wins[idx] = managers[idx].reclaim_if_stale(3)

        threads = [threading.Thread(target=race, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for m in managers:
            m.close()
        assert sum(wins) == 1
        assert len(store.tombs(3)) == 1

    def test_missing_lease_is_not_stale(self, tmp_path):
        lm = LeaseManager(ShardStore(tmp_path), "w", ttl=0.1)
        try:
            assert not lm.is_stale(0)
            assert not lm.reclaim_if_stale(0)
        finally:
            lm.close()

    def test_staleness_ignores_local_clock_skew(self, tmp_path, monkeypatch):
        """Regression: staleness must be measured on the filesystem's
        clock, not ``time.time()``.

        On a shared filesystem, lease mtimes come from the server's
        clock.  The old check compared them against the local clock, so
        a local clock running ahead (here: +1000 s) made every freshly
        written lease read as abandoned and live claims got tombstoned.
        """
        store = ShardStore(tmp_path)
        holder = LeaseManager(store, "h", ttl=0.5)
        watcher = LeaseManager(store, "w", ttl=0.5)
        monkeypatch.setattr(time, "time", lambda real=time.time: real() + 1000.0)
        try:
            assert holder.try_claim(0)  # fresh mtime on the *fs* clock
            assert not watcher.is_stale(0)
            assert not watcher.reclaim_if_stale(0)
            assert store.lease_path(0).exists()

            # a genuinely abandoned lease still reclaims under the skew
            store.lease_path(1).write_text("{}")
            old = os.stat(store.lease_path(1)).st_mtime - 10
            os.utime(store.lease_path(1), (old, old))
            assert watcher.is_stale(1)
            assert watcher.reclaim_if_stale(1)
        finally:
            holder.close()
            watcher.close()

    def test_staleness_falls_back_to_local_clock(self, tmp_path):
        """With the probe unwritable (read-only store), the check
        degrades to the pre-fix local-clock comparison."""
        store = ShardStore(tmp_path)
        store.lease_path(0).write_text("{}")
        old = time.time() - 10
        os.utime(store.lease_path(0), (old, old))
        watcher = LeaseManager(store, "w", ttl=0.5)
        watcher._probe = tmp_path / "no-such-dir" / "probe"
        try:
            assert watcher.is_stale(0)
        finally:
            watcher.close()


# -- sharded == serial -------------------------------------------------------


class TestShardedIdentity:
    def test_matches_serial_byte_for_byte(self, tmp_path):
        tasks = _grid(9)
        serial_cache = ResultCache(root=tmp_path / "serial", enabled=True)
        expected = run_tasks(tasks, jobs=1, cache=serial_cache)

        shard_cache = ResultCache(root=tmp_path / "sharded", enabled=True)
        timings = Timings()
        got = run_sharded(
            tasks, 4, cache=shard_cache, workers=2, timings=timings,
            lease_ttl=5.0, poll=0.02,
        )
        assert got == expected
        assert _entry_bytes(shard_cache.root) == _entry_bytes(serial_cache.root)
        assert timings.counters["tasks"] == 9
        assert timings.counters["tasks_run"] == 9

    def test_run_tasks_shards_kwarg_delegates(self, tmp_path):
        tasks = _grid(6)
        serial = run_tasks(
            tasks, jobs=1, cache=ResultCache(root=tmp_path / "a", enabled=True)
        )
        sharded = run_tasks(
            tasks,
            cache=ResultCache(root=tmp_path / "b", enabled=True),
            shards=3,
            shard_workers=2,
        )
        assert sharded == serial

    def test_resume_warm_runs_nothing(self, tmp_path):
        tasks = _grid(6)
        cache = ResultCache(root=tmp_path, enabled=True)
        first = run_sharded(tasks, 3, cache=cache)
        timings = Timings()
        again = run_sharded(tasks, 3, cache=cache, timings=timings)
        assert again == first
        # done markers short-circuit the workers; assembly is all hits
        assert timings.counters["cache_hits"] == 6

    def test_quarantine_reconciliation(self, tmp_path):
        """An entry that rots after its shard ran is quarantined and
        transparently re-executed at assembly."""
        tasks = _grid(5)
        cache = ResultCache(root=tmp_path, enabled=True)
        expected = run_sharded(tasks, 2, cache=cache)
        victim = cache._path(tasks[2].key)
        victim.write_text("{ truncated")
        got = run_sharded(tasks, 2, cache=cache)
        assert got == expected
        assert victim.with_suffix(".corrupt").exists()
        # the re-run re-put a healthy entry under the same key
        assert json.loads(victim.read_text())["key"] == tasks[2].key

    def test_requires_keys_and_enabled_cache(self, tmp_path):
        keyed = _grid(2)
        with pytest.raises(ValueError, match="ResultCache"):
            run_sharded(keyed, 2, cache=None)
        with pytest.raises(ValueError, match="enabled"):
            run_sharded(
                keyed, 2, cache=ResultCache(root=tmp_path, enabled=False)
            )
        unkeyed = [GridTask(fn=_counting_point, args=(0,))]
        with pytest.raises(ValueError, match="no cache key"):
            run_sharded(unkeyed, 1, cache=ResultCache(root=tmp_path, enabled=True))

    def test_empty_grid(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        assert run_sharded([], cache=cache) == []


class TestCacheMerge:
    def test_merged_dirs_equal_shared_dir(self, tmp_path):
        """Workers sweeping into separate cache dirs, merged afterward,
        produce the byte-identical result set of a shared-dir run."""
        tasks = _grid(8)
        shared = ResultCache(root=tmp_path / "shared", enabled=True)
        run_tasks(tasks, jobs=1, cache=shared)

        # two disjoint halves into two separate dirs
        a = ResultCache(root=tmp_path / "a", enabled=True)
        b = ResultCache(root=tmp_path / "b", enabled=True)
        run_tasks(tasks[:4], jobs=1, cache=a)
        run_tasks(tasks[4:], jobs=1, cache=b)

        union = ResultCache(root=tmp_path / "union", enabled=True)
        assert union.merge(a) == {"merged": 4, "skipped": 0, "corrupt": 0}
        assert union.merge(b) == {"merged": 4, "skipped": 0, "corrupt": 0}
        assert _entry_bytes(union.root) == _entry_bytes(shared.root)
        # and the merged dir serves the grid fully warm
        timings = Timings()
        assert run_tasks(tasks, jobs=1, cache=union, timings=timings) == [
            {"i": i, "sq": i * i} for i in range(8)
        ]
        assert timings.counters["cache_hits"] == 8

    def test_merge_skips_existing_and_quarantines_corrupt(self, tmp_path):
        tasks = _grid(3)
        src = ResultCache(root=tmp_path / "src", enabled=True)
        run_tasks(tasks, jobs=1, cache=src)
        # corrupt one source entry; pre-populate one key in the dest
        src._path(tasks[0].key).write_text("not json")
        dest = ResultCache(root=tmp_path / "dest", enabled=True)
        run_tasks(tasks[1:2], jobs=1, cache=dest)
        counts = dest.merge(src)
        assert counts == {"merged": 1, "skipped": 1, "corrupt": 1}
        assert src._path(tasks[0].key).with_suffix(".corrupt").exists()


# -- shard-level metric merge commutativity ----------------------------------


def _identity_rows(rows: list[dict]) -> list[dict]:
    """Rows minus wall-clock values and gauges (last-writer-wins is
    order-dependent by design; everything else must commute)."""
    return [
        r
        for r in rows
        if not is_time_metric(r["name"]) and r["kind"] != "gauge"
    ]


class TestMetricMergeCommutativity:
    def test_any_completion_order_equals_serial(self, tmp_path):
        tasks = _grid(6)
        # serial baseline, captured
        with obs.capture() as serial:
            run_tasks(
                tasks, jobs=1, cache=ResultCache(root=tmp_path / "s", enabled=True)
            )
        cache = ResultCache(root=tmp_path / "p", enabled=True)
        run_sharded(tasks, 3, cache=cache, lease_ttl=5.0)
        store = ShardStore(Path(cache.root) / "shards" / grid_id(tasks))
        markers = [store.read_done(s) for s in range(3)]
        assert all(m is not None for m in markers)

        # merging the shard exports in ANY completion order produces the
        # serial registry (modulo wall-clock values)
        want = _identity_rows(serial.metrics.snapshot())
        for perm in itertools.permutations(range(3)):
            registry = MetricsRegistry()
            for s in perm:
                registry.merge_rows(markers[s]["obs"]["metrics"])
            assert _identity_rows(registry.snapshot()) == want, perm

    def test_shard_timings_envelope_wall_clock(self, tmp_path):
        """Shard wall clocks overlap: the merged wall_seconds is the
        envelope (max), not the sum — the PR-5 rule applied shard-level."""
        tasks = _grid(4)
        cache = ResultCache(root=tmp_path, enabled=True)
        timings = Timings()
        run_sharded(tasks, 4, cache=cache, timings=timings)
        store = ShardStore(Path(cache.root) / "shards" / grid_id(tasks))
        walls = [store.read_done(s)["timings"]["wall_seconds"] for s in range(4)]
        # assembly adds its own (warm, tiny) wall pass on top of the max
        assert timings.counters["wall_seconds"] < sum(walls) + 1.0
        assert timings.counters["wall_seconds"] >= max(walls)


# -- crash-resume ------------------------------------------------------------


def _wait_for(predicate, timeout=30.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(0.02)


class TestCrashResume:
    def test_kill9_victim_reclaimed_exactly_once(self, tmp_path):
        """kill -9 a worker mid-shard; survivors reclaim its lease
        exactly once, re-run the shard, and the final merged results are
        identical to a serial run."""
        n = 4
        ttl = 0.5
        flag_dir = tmp_path / "flags"
        flag_dir.mkdir()
        cache_root = tmp_path / "cache"
        tasks = _crash_grid(n, str(flag_dir))
        store = ShardStore(cache_root / "shards" / grid_id(tasks))

        ctx = mp.get_context("fork")
        victim = ctx.Process(
            target=_crash_worker,
            args=(n, str(flag_dir), str(cache_root), "victim", ttl),
        )
        victim.start()
        # the victim claims shard 0 and blocks inside task 0
        _wait_for(lambda: (flag_dir / "started-0").exists(), what="victim start")
        assert store.lease_path(0).exists()
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)

        # unblock the grid and send in two racing survivors
        (flag_dir / "go").touch()
        survivors = [
            ctx.Process(
                target=_crash_worker,
                args=(n, str(flag_dir), str(cache_root), f"s{i}", ttl),
            )
            for i in range(2)
        ]
        for p in survivors:
            p.start()
        for p in survivors:
            p.join(timeout=60)
            assert p.exitcode == 0

        # every shard done, the victim's lease tombstoned exactly once
        assert all(store.is_done(s) for s in range(n))
        assert len(store.tombs(0)) == 1
        assert not store.lease_path(0).exists()
        marker = store.read_done(0)
        assert marker["worker"] in ("s0", "s1")

        # merged result set identical (bytes included) to a fresh serial run
        cache = ResultCache(root=cache_root, enabled=True)
        got = run_sharded(tasks, n, cache=cache, lease_ttl=ttl)
        serial_cache = ResultCache(root=tmp_path / "serial", enabled=True)
        expected = run_tasks(tasks, jobs=1, cache=serial_cache)
        assert got == expected == [i * i for i in range(n)]
        assert _entry_bytes(cache.root) == _entry_bytes(serial_cache.root)


# -- the CLI -----------------------------------------------------------------


class TestCli:
    def _run_cli(self, *args, env=None):
        e = dict(os.environ, PYTHONPATH=str(SRC))
        if env:
            e.update(env)
        return subprocess.run(
            [sys.executable, "-m", "repro.runtime.shard", *args],
            capture_output=True, text=True, env=e, timeout=120,
        )

    def test_concurrent_cli_workers_match_serial_digest(self, tmp_path):
        serial = self._run_cli(
            "--grid", "demo", "--size", "6", "--shards", "3",
            "--cache", str(tmp_path / "serial"),
        )
        assert serial.returncode == 0, serial.stderr
        serial_digest = serial.stdout.splitlines()[0]

        shared = str(tmp_path / "shared")
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.runtime.shard",
                    "--grid", "demo", "--size", "6", "--shards", "3",
                    "--cache", shared, "--worker-id", f"w{i}",
                    "--lease-ttl", "5", "--poll", "0.05",
                ],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
                env=dict(os.environ, PYTHONPATH=str(SRC)),
            )
            for i in range(2)
        ]
        outs = [p.communicate(timeout=120) for p in procs]
        for p, (out, err) in zip(procs, outs):
            assert p.returncode == 0, err
        digests = {out.splitlines()[0] for out, _ in outs}
        assert digests == {serial_digest}

    def test_unknown_grid_errors(self, tmp_path):
        res = self._run_cli("--grid", "nope", "--cache", str(tmp_path))
        assert res.returncode != 0
        assert "unknown grid" in res.stderr
