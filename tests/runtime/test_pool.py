"""Grid runner: ordering, serial/parallel identity, REPRO_JOBS
resolution, cache-before-dispatch, and timing counters."""

from __future__ import annotations

import pytest

from repro.runtime import GridTask, ResultCache, Timings, default_jobs, run_tasks


def _square(x: int) -> int:
    return x * x


def _fail(x: int) -> int:
    raise ValueError(f"boom {x}")


def _tasks(n: int, keyed: bool = False) -> list[GridTask]:
    return [
        GridTask(fn=_square, args=(i,), key=(f"{i:064x}" if keyed else None))
        for i in range(n)
    ]


class TestDefaultJobs:
    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    def test_env_sets_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4

    def test_invalid_and_subunit_values_are_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1


class TestRunTasks:
    def test_serial_order(self):
        assert run_tasks(_tasks(6), jobs=1) == [0, 1, 4, 9, 16, 25]

    def test_parallel_matches_serial(self):
        assert run_tasks(_tasks(6), jobs=3) == run_tasks(_tasks(6), jobs=1)

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert run_tasks(_tasks(4)) == [0, 1, 4, 9]

    def test_empty_grid(self):
        assert run_tasks([], jobs=4) == []

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_tasks([GridTask(fn=_fail, args=(1,))], jobs=1)

    def test_parallel_exception_propagates(self):
        tasks = _tasks(3) + [GridTask(fn=_fail, args=(9,))]
        with pytest.raises(ValueError, match="boom 9"):
            run_tasks(tasks, jobs=2)

    def test_timings_counters(self):
        t = Timings()
        run_tasks(_tasks(5), jobs=1, timings=t)
        assert t.counters["tasks"] == 5
        assert t.counters["tasks_run"] == 5
        assert t.counters.get("cache_hits", 0) == 0
        assert t.counters["task_seconds"] >= 0
        assert "tasks_run=5" in t.summary()


class TestCacheIntegration:
    def test_cold_run_populates_warm_run_skips(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cold, warm = Timings(), Timings()
        r1 = run_tasks(_tasks(4, keyed=True), jobs=2, cache=cache, timings=cold)
        r2 = run_tasks(_tasks(4, keyed=True), jobs=2, cache=cache, timings=warm)
        assert r1 == r2 == [0, 1, 4, 9]
        assert cold.counters["tasks_run"] == 4
        assert warm.counters.get("tasks_run", 0) == 0
        assert warm.counters["cache_hits"] == 4
        assert warm.counters.get("task_seconds", 0.0) == 0.0

    def test_partial_warmth_runs_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        run_tasks(_tasks(2, keyed=True), jobs=1, cache=cache)
        t = Timings()
        out = run_tasks(_tasks(5, keyed=True), jobs=1, cache=cache, timings=t)
        assert out == [0, 1, 4, 9, 16]
        assert t.counters["cache_hits"] == 2
        assert t.counters["tasks_run"] == 3

    def test_unkeyed_tasks_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        t = Timings()
        run_tasks(_tasks(3, keyed=False), jobs=1, cache=cache, timings=t)
        run_tasks(_tasks(3, keyed=False), jobs=1, cache=cache, timings=t)
        assert t.counters["tasks_run"] == 6
        assert cache.puts == 0


class TestTimings:
    def test_merge(self):
        a, b = Timings(), Timings()
        a.add("tasks", 2)
        b.add("tasks", 3)
        b.add("cache_hits", 1)
        a.merge(b)
        assert a.counters == {"tasks": 5, "cache_hits": 1}

    def test_timer_context(self):
        t = Timings()
        with t.timer("task_seconds"):
            pass
        assert t.counters["task_seconds"] >= 0

    def test_merge_wall_seconds_is_envelope_not_sum(self):
        """Regression: concurrent sub-sweeps overlap in wall time, so
        merging their ``wall_seconds`` by summation overstates elapsed
        time — the merged value must be the max."""
        a, b = Timings(), Timings()
        a.add("wall_seconds", 2.0)
        a.add("task_seconds", 2.0)
        b.add("wall_seconds", 5.0)
        b.add("task_seconds", 5.0)
        a.merge(b)
        assert a.counters["wall_seconds"] == 5.0  # envelope
        assert a.counters["task_seconds"] == 7.0  # in-worker time still sums

    def test_merge_wall_seconds_never_shrinks(self):
        a, b = Timings(), Timings()
        a.add("wall_seconds", 5.0)
        b.add("wall_seconds", 1.0)
        a.merge(b)
        assert a.counters["wall_seconds"] == 5.0

    def test_facade_exposes_registry(self):
        t = Timings()
        t.add("tasks", 3)
        assert t.registry.value("tasks") == 3
        assert t.counters == {"tasks": 3}
