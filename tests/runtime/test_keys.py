"""Content-addressed key construction: equal inputs collide, any
changed ingredient — weights, delta, codec spec, storage format,
evaluation set — addresses a different entry."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.codecs import get_codec
from repro.core.compression import StorageFormat
from repro.runtime import (
    codec_spec,
    fingerprint_array,
    fingerprint_arrays,
    result_key,
)


class TestFingerprints:
    def test_array_content_addressed(self):
        a = np.arange(8, dtype=np.float32)
        assert fingerprint_array(a) == fingerprint_array(a.copy())

    def test_array_value_sensitivity(self):
        a = np.arange(8, dtype=np.float32)
        b = a.copy()
        b[3] += 1e-6
        assert fingerprint_array(a) != fingerprint_array(b)

    def test_array_dtype_and_shape_sensitivity(self):
        a = np.zeros(8, dtype=np.float32)
        assert fingerprint_array(a) != fingerprint_array(a.astype(np.float64))
        assert fingerprint_array(a) != fingerprint_array(a.reshape(2, 4))

    def test_arrays_order_sensitivity(self):
        x = np.ones(4, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        assert fingerprint_arrays(x, y) != fingerprint_arrays(y, x)

    def test_non_contiguous_view_equals_copy(self):
        a = np.arange(16, dtype=np.float32)[::2]
        assert fingerprint_array(a) == fingerprint_array(a.copy())


class TestCodecSpec:
    def test_string_spec(self):
        assert codec_spec("linefit") == {"name": "linefit", "params": None}

    def test_instance_spec_carries_params(self):
        a = codec_spec(get_codec("linefit", delta_pct=5.0))
        b = codec_spec(get_codec("linefit", delta_pct=10.0))
        assert a["name"] == b["name"] == "linefit"
        assert a != b

    def test_equal_construction_same_spec(self):
        a = codec_spec(get_codec("linefit", delta_pct=5.0))
        b = codec_spec(get_codec("linefit", delta_pct=5.0))
        assert a == b


class TestResultKey:
    WEIGHTS = np.linspace(-1, 1, 64).astype(np.float32)

    def _key(self, **overrides) -> str:
        ingredients = {
            "weights": fingerprint_array(self.WEIGHTS),
            "codec": codec_spec("linefit"),
            "delta_pct": 5.0,
            "fmt": StorageFormat(),
            "eval_set": "abc123",
        }
        ingredients.update(overrides)
        return result_key("delta-record", **ingredients)

    def test_deterministic(self):
        assert self._key() == self._key()

    def test_weights_change_key(self):
        other = self.WEIGHTS.copy()
        other[0] += 0.5
        assert self._key() != self._key(weights=fingerprint_array(other))

    def test_delta_changes_key(self):
        assert self._key() != self._key(delta_pct=10.0)

    def test_codec_changes_key(self):
        assert self._key() != self._key(codec=codec_spec("huffman"))

    def test_format_changes_key(self):
        assert self._key() != self._key(fmt=StorageFormat.int8())

    def test_eval_set_changes_key(self):
        assert self._key() != self._key(eval_set="other")

    def test_kind_namespaces(self):
        ingredients = {"x": 1}
        assert result_key("a", **ingredients) != result_key("b", **ingredients)

    def test_unhashable_ingredient_rejected(self):
        with pytest.raises(TypeError):
            result_key("k", bad=object())


class TestCrossProcessDeterminism:
    """Sharded workers on different hosts must agree on every key.

    That forbids three classic sources of drift: ``PYTHONHASHSEED``
    (dict iteration order), the process working directory (absolute
    paths leaking into ingredients), and insertion order of ingredient
    dicts.  A subprocess recomputes the keys under a different hash
    seed from a different cwd and must reproduce them bit for bit.
    """

    _SCRIPT = """
import json, sys
import numpy as np
from repro.runtime import codec_spec, fingerprint_array, result_key
from repro.core.compression import StorageFormat

weights = np.linspace(-1, 1, 64).astype(np.float32)
keys = [
    result_key(
        "delta-record",
        weights=fingerprint_array(weights),
        codec=codec_spec("linefit"),
        delta_pct=5.0,
        fmt=StorageFormat(),
        eval_set="abc123",
    ),
    result_key("shard-demo", seed=3, n=4096, reps=2),
    result_key("nested", cfg={"b": 2, "a": 1, "z": {"y": [1, 2]}}),
]
print(json.dumps(keys))
"""

    def _keys_in_subprocess(self, hashseed: str, cwd: Path) -> list[str]:
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(
            os.environ, PYTHONPATH=str(src), PYTHONHASHSEED=hashseed
        )
        out = subprocess.run(
            [sys.executable, "-c", self._SCRIPT],
            capture_output=True, text=True, env=env, cwd=cwd, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        return json.loads(out.stdout)

    def test_keys_survive_hash_seed_and_cwd(self, tmp_path):
        a_dir = tmp_path / "workdir-a"
        b_dir = tmp_path / "deeply" / "nested" / "workdir-b"
        b_dir.mkdir(parents=True)
        a_dir.mkdir()
        a = self._keys_in_subprocess("0", a_dir)
        b = self._keys_in_subprocess("4242", b_dir)
        assert a == b

    def test_ingredient_dict_order_irrelevant(self):
        assert result_key("k", a=1, b=2, c={"x": 1, "y": 2}) == result_key(
            "k", b=2, c={"y": 2, "x": 1}, a=1
        )
