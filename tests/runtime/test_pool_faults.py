"""Pool resilience: timeouts, retries, crash recovery, salvage.

Every scenario is driven by the deterministic injectors from
``repro.resilience`` (sentinel-file one-shot faults), so the tests need
no flaky timing games and no sleep longer than ~1 second.
"""

from __future__ import annotations

import time

import pytest

from repro.core.errors import FaultError
from repro.resilience import crash, crash_once, hang_once, kill_once
from repro.runtime import GridTask, ResultCache, RunPolicy, Timings, run_tasks


def _square(x: int) -> int:
    return x * x


def _grid(n: int) -> list[GridTask]:
    return [GridTask(fn=_square, args=(i,)) for i in range(n)]


def _sleep_return(seconds: float, value):
    time.sleep(seconds)
    return value


class TestRunPolicyValidation:
    def test_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            RunPolicy(timeout=0)

    def test_bad_retries(self):
        with pytest.raises(ValueError, match="retries"):
            RunPolicy(retries=-1)

    def test_bad_backoff(self):
        with pytest.raises(ValueError, match="backoff"):
            RunPolicy(backoff=-0.5)

    def test_defaults_are_strict(self):
        policy = RunPolicy()
        assert policy.timeout is None
        assert policy.retries == 0
        assert not policy.salvage
        assert policy.max_backoff is None
        assert not policy.jitter

    def test_bad_max_backoff(self):
        with pytest.raises(ValueError, match="max_backoff"):
            RunPolicy(max_backoff=0)


class TestBackoffSchedule:
    def test_no_jitter_is_plain_exponential(self):
        policy = RunPolicy(backoff=0.1)
        assert [policy.backoff_for(k) for k in range(4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8]
        )

    def test_zero_backoff_stays_zero(self):
        policy = RunPolicy(backoff=0.0, jitter=True, jitter_seed=1)
        assert all(policy.backoff_for(k) == 0.0 for k in range(5))

    def test_cap_applies_before_jitter(self):
        policy = RunPolicy(backoff=0.1, max_backoff=0.25)
        assert [policy.backoff_for(k) for k in range(5)] == pytest.approx(
            [0.1, 0.2, 0.25, 0.25, 0.25]
        )

    def test_full_jitter_within_capped_base(self):
        policy = RunPolicy(
            backoff=0.1, max_backoff=1.0, jitter=True, jitter_seed=123
        )
        rng = policy.rng()
        for k in range(20):
            d = policy.backoff_for(k, rng)
            assert 0.0 <= d <= min(1.0, 0.1 * 2**k)

    def test_jitter_deterministic_under_seed(self):
        policy = RunPolicy(backoff=0.1, jitter=True, jitter_seed=7)
        a = [policy.backoff_for(k, policy.rng()) for k in range(6)]
        b = [policy.backoff_for(k, policy.rng()) for k in range(6)]
        assert a == b
        # a shared generator across attempts is the scheduling shape
        # the supervisor uses: still deterministic for one seed
        rng1, rng2 = policy.rng(), policy.rng()
        assert [policy.backoff_for(k, rng1) for k in range(6)] == [
            policy.backoff_for(k, rng2) for k in range(6)
        ]

    def test_jitter_seeds_differ(self):
        a = RunPolicy(backoff=0.1, jitter=True, jitter_seed=1)
        b = RunPolicy(backoff=0.1, jitter=True, jitter_seed=2)
        assert [a.backoff_for(k, a.rng()) for k in range(6)] != [
            b.backoff_for(k, b.rng()) for k in range(6)
        ]

    def test_jittered_retry_delay_still_bounded_in_run(self, tmp_path):
        """A jittered policy through the real retry loop: the retry
        happens and the jittered sleep stays under the capped base."""
        sentinel = str(tmp_path / "s")
        timings = Timings()
        start = time.perf_counter()
        results = run_tasks(
            [GridTask(fn=crash_once, args=(sentinel, 42))],
            jobs=1,
            timings=timings,
            policy=RunPolicy(
                retries=1, backoff=0.05, max_backoff=0.05, jitter=True,
                jitter_seed=0,
            ),
        )
        elapsed = time.perf_counter() - start
        assert results == [42]
        assert timings.counters["task_retries"] == 1
        assert elapsed < 5.0  # jitter never exceeds the 50 ms cap


class TestRetry:
    def test_crash_once_recovers_serially(self, tmp_path):
        sentinel = str(tmp_path / "s")
        timings = Timings()
        tasks = _grid(3) + [GridTask(fn=crash_once, args=(sentinel, 42))]
        results = run_tasks(
            tasks, jobs=1, timings=timings, policy=RunPolicy(retries=1)
        )
        assert results == [0, 1, 4, 42]
        assert timings.counters["task_retries"] == 1

    def test_crash_once_recovers_in_parallel(self, tmp_path):
        sentinel = str(tmp_path / "s")
        timings = Timings()
        tasks = _grid(3) + [GridTask(fn=crash_once, args=(sentinel, 42))]
        results = run_tasks(
            tasks, jobs=2, timings=timings, policy=RunPolicy(retries=1)
        )
        assert results == [0, 1, 4, 42]
        assert timings.counters["task_retries"] == 1

    def test_failed_attempt_time_lands_in_its_own_counter(self, tmp_path):
        """Regression: a failed attempt's duration used to vanish (pool
        path) or pollute ``task_seconds`` — it belongs to
        ``task_failed_seconds``."""
        sentinel = str(tmp_path / "s")
        timings = Timings()
        run_tasks(
            [GridTask(fn=crash_once, args=(sentinel, 42))],
            jobs=1,
            timings=timings,
            policy=RunPolicy(retries=1),
        )
        assert timings.counters["task_failed_seconds"] > 0.0
        # only the successful attempt counts as executed work
        assert timings.counters["tasks_run"] == 1

    def test_failed_attempt_time_survives_the_pool_boundary(self, tmp_path):
        sentinel = str(tmp_path / "s")
        timings = Timings()
        tasks = _grid(3) + [GridTask(fn=crash_once, args=(sentinel, 42))]
        results = run_tasks(
            tasks, jobs=2, timings=timings, policy=RunPolicy(retries=1)
        )
        assert results == [0, 1, 4, 42]
        assert timings.counters["task_failed_seconds"] > 0.0

    def test_retries_exhausted_raises_original(self):
        with pytest.raises(FaultError, match="injected worker crash"):
            run_tasks(
                [GridTask(fn=crash, args=())], jobs=1, policy=RunPolicy(retries=2)
            )

    def test_no_retries_is_fail_fast(self, tmp_path):
        sentinel = str(tmp_path / "s")
        with pytest.raises(FaultError):
            run_tasks(
                [GridTask(fn=crash_once, args=(sentinel, 1))],
                jobs=1,
                policy=RunPolicy(),
            )


class TestSalvage:
    def test_exhausted_task_becomes_none_slot(self):
        timings = Timings()
        tasks = [GridTask(fn=crash, args=())] + _grid(3)
        results = run_tasks(
            tasks, jobs=1, timings=timings, policy=RunPolicy(salvage=True)
        )
        assert results == [None, 0, 1, 4]
        assert timings.counters["tasks_failed"] == 1
        assert timings.counters["tasks_run"] == 3

    def test_failed_slots_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", enabled=True)
        key = "f" * 64
        tasks = [GridTask(fn=crash, args=(), key=key)]
        results = run_tasks(
            tasks, jobs=1, cache=cache, policy=RunPolicy(salvage=True)
        )
        assert results == [None]
        assert cache.puts == 0


class TestTimeout:
    def test_hung_task_is_abandoned_and_redispatched(self, tmp_path):
        sentinel = str(tmp_path / "hang")
        timings = Timings()
        tasks = [GridTask(fn=hang_once, args=(sentinel, 1.0, "slow"))] + _grid(3)
        results = run_tasks(
            tasks,
            jobs=2,
            timings=timings,
            policy=RunPolicy(timeout=0.25, retries=1),
        )
        # the retry after the timeout sees the sentinel and returns fast
        assert results == ["slow", 0, 1, 4]
        assert timings.counters["task_timeouts"] == 1

    def test_finished_results_salvaged_from_abandoned_pool(self, tmp_path):
        sentinel = str(tmp_path / "hang")
        timings = Timings()
        tasks = [GridTask(fn=hang_once, args=(sentinel, 1.0, "slow"))] + _grid(5)
        results = run_tasks(
            tasks,
            jobs=3,
            timings=timings,
            policy=RunPolicy(timeout=0.25, retries=1),
        )
        assert results == ["slow", 0, 1, 4, 9, 16]
        # every grid point ran exactly once somewhere
        assert timings.counters["tasks_run"] == 6

    def test_deadline_runs_from_submission_not_collection_order(self, tmp_path):
        """Regression: the per-task timeout used to be measured from the
        sequential ``result()`` call, so a hung task *last* in the
        futures list got ``timeout + sum(predecessor runtimes)`` before
        being declared.  The deadline now runs from pool submission:
        slow-but-finishing predecessors consume the shared wall-clock
        budget, and the hang is detected within ~``timeout`` total."""
        sentinel = str(tmp_path / "hang")
        timings = Timings()
        tasks = [
            GridTask(fn=_sleep_return, args=(0.3, "a")),
            GridTask(fn=_sleep_return, args=(0.6, "b")),
            GridTask(fn=_sleep_return, args=(0.9, "c")),
            GridTask(fn=hang_once, args=(sentinel, 2.5, "hung")),
        ]
        t0 = time.perf_counter()
        results = run_tasks(
            tasks, jobs=4, timings=timings, policy=RunPolicy(timeout=1.0)
        )
        elapsed = time.perf_counter() - t0
        # the serial re-dispatch sees the sentinel and returns instantly,
        # so end-to-end time is ~timeout; the old collection-order
        # accounting needed ~1.9s (0.9s of predecessors + a fresh 1.0s
        # budget for the hung future)
        assert results == ["a", "b", "c", "hung"]
        assert timings.counters["task_timeouts"] == 1
        assert elapsed < 1.6, (
            f"hang declared after {elapsed:.2f}s — the per-task deadline "
            "is not being measured from submission"
        )

    def test_serial_run_ignores_timeout(self, tmp_path):
        # in-process execution has no watchdog; the task just runs
        sentinel = str(tmp_path / "hang")
        results = run_tasks(
            [GridTask(fn=hang_once, args=(sentinel, 0.1, "v"))],
            jobs=1,
            policy=RunPolicy(timeout=0.25),
        )
        assert results == ["v"]


class TestBrokenPool:
    def test_killed_worker_recovers_serially(self, tmp_path):
        sentinel = str(tmp_path / "kill")
        timings = Timings()
        tasks = [GridTask(fn=kill_once, args=(sentinel, "back"))] + _grid(3)
        results = run_tasks(
            tasks, jobs=2, timings=timings, policy=RunPolicy(retries=1)
        )
        assert results == ["back", 0, 1, 4]
        assert timings.counters["pool_restarts"] == 1

    def test_strict_default_policy_still_propagates(self):
        # without a policy the historical contract holds: first
        # exception propagates, no recovery
        with pytest.raises(FaultError):
            run_tasks([GridTask(fn=crash, args=())], jobs=1)


class TestCombinedFaults:
    def test_crash_and_hang_in_one_sweep(self, tmp_path):
        """The acceptance scenario: one killed worker AND one hung task
        in the same sweep — it still completes with correct results and
        the timings report the recovery work."""
        crash_s = str(tmp_path / "crash")
        hang_s = str(tmp_path / "hang")
        timings = Timings()
        tasks = (
            _grid(3)
            + [GridTask(fn=crash_once, args=(crash_s, "crashed"))]
            + [GridTask(fn=hang_once, args=(hang_s, 1.0, "hung"))]
            + _grid(2)
        )
        results = run_tasks(
            tasks,
            jobs=2,
            timings=timings,
            policy=RunPolicy(timeout=0.25, retries=2),
        )
        assert results == [0, 1, 4, "crashed", "hung", 0, 1]
        assert timings.counters["task_retries"] >= 1
        assert timings.counters["tasks_run"] == 7


class TestCacheInteraction:
    def test_warm_cache_skips_faulty_tasks_entirely(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", enabled=True)
        key = "a" * 64
        cache.put(key, "cached")
        timings = Timings()
        results = run_tasks(
            [GridTask(fn=crash, args=(), key=key)],
            jobs=1,
            cache=cache,
            timings=timings,
            policy=RunPolicy(),
        )
        assert results == ["cached"]
        assert timings.counters["cache_hits"] == 1
