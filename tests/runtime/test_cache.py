"""ResultCache: typed round-trips, miss semantics, corruption safety,
the ``REPRO_RESULT_CACHE`` kill switch, and hit/miss counters."""

from __future__ import annotations

import json

import numpy as np

from repro.core.metrics import CompressionReport
from repro.core.pipeline import DeltaRecord
from repro.energy.model import EnergyBreakdown
from repro.mapping.accelerator import LayerResult, ModelResult
from repro.noc.transaction import LatencyComponents
from repro.runtime import MISS, ResultCache
from repro.runtime.serialize import decode, encode

RECORD = DeltaRecord(
    delta_pct=5.0, top1=0.91, top5=0.99, cr=1.38, mse=8.8e-5, num_segments=321
)


def _model_result() -> ModelResult:
    energy = EnergyBreakdown()
    energy.dynamic["router"] = 1.5e-6
    layer = LayerResult(
        layer_name="conv_1",
        latency=LatencyComponents(memory=10, communication=20, computation=30),
        energy=energy,
        events={"macs": 1234, "flit_hops": 99},
    )
    return ModelResult(model_name="LeNet-5", layers=[layer, layer])


class TestSerialize:
    def test_delta_record_roundtrip(self):
        assert decode(encode(RECORD)) == RECORD

    def test_report_list_roundtrip(self):
        reports = [
            CompressionReport(
                delta_pct=0.0, cr=1.21, weighted_cr=1.17, mem_fp_reduction=0.14,
                mse=5.9e-5,
            )
        ]
        assert decode(encode(reports)) == reports

    def test_model_result_roundtrip(self):
        res = _model_result()
        back = decode(encode(res))
        assert back == res
        assert back.total_latency.total == res.total_latency.total
        assert back.total_energy.total == res.total_energy.total

    def test_float_fidelity(self):
        # JSON floats round-trip IEEE doubles exactly via repr
        values = [0.1, 1 / 3, 2.2250738585072014e-308, 0.9999999999999999]
        assert decode(encode(values)) == values


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        assert cache.get("k" * 64) is MISS
        cache.put("k" * 64, [RECORD])
        assert cache.get("k" * 64) == [RECORD]
        assert cache.hits == 1 and cache.misses == 1 and cache.puts == 1

    def test_cache_survives_reopen(self, tmp_path):
        ResultCache(tmp_path, enabled=True).put("a" * 64, RECORD)
        assert ResultCache(tmp_path, enabled=True).get("a" * 64) == RECORD

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.put("b" * 64, RECORD)
        path = cache._path("b" * 64)
        path.write_text("{truncated")
        assert cache.get("b" * 64) is MISS

    def test_corrupt_entry_is_quarantined_not_clobbered(self, tmp_path):
        """A hand-truncated entry moves aside to *.corrupt, the key reads
        as a miss, and the next put repopulates it cleanly."""
        cache = ResultCache(tmp_path, enabled=True)
        key = "b" * 64
        cache.put(key, RECORD)
        path = cache._path(key)
        truncated = path.read_text()[: len(path.read_text()) // 2]
        path.write_text(truncated)

        assert cache.get(key) is MISS
        assert cache.quarantined == 1
        assert cache.counters()["cache_quarantined"] == 1
        quarantine = path.with_suffix(".corrupt")
        assert quarantine.exists()
        assert quarantine.read_text() == truncated  # damage kept for autopsy
        assert not path.exists()

        cache.put(key, RECORD)
        assert cache.get(key) == RECORD

    def test_absent_entry_is_plain_miss_not_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        assert cache.get("e" * 64) is MISS
        assert cache.quarantined == 0

    def test_wrong_schema_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        path = cache._path("c" * 64)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"unexpected": 1}))
        assert cache.get("c" * 64) is MISS

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        cache = ResultCache(tmp_path)
        cache.put("d" * 64, RECORD)
        assert cache.get("d" * 64) is MISS
        assert list(tmp_path.iterdir()) == []

    def test_default_root_lives_under_repro_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        cache = ResultCache()
        assert cache.root == tmp_path / "results"

    def test_uncacheable_value_skipped(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.put("e" * 64, {"arr": np.arange(3)})  # ndarray: not serializable
        assert cache.get("e" * 64) is MISS
        assert cache.puts == 0

    def test_refuses_foreign_import_tags(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        path = cache._path("f" * 64)
        path.parent.mkdir(parents=True)
        doc = {
            "key": "f" * 64,
            "value": {"__dataclass__": "os:system", "fields": {}},
        }
        path.write_text(json.dumps(doc))
        assert cache.get("f" * 64) is MISS


def _hammer(root: str, key: str, worker: int, iterations: int) -> int:
    """Multiprocess stress worker: interleave puts and gets on one key.

    Returns the number of reads that came back as a value written by
    *some* worker (a plain MISS before the first put is fine; anything
    else readable must be a well-formed entry).
    """
    cache = ResultCache(root, enabled=True)
    good = 0
    for i in range(iterations):
        cache.put(key, {"worker": worker, "i": i})
        value = cache.get(key)
        if value is not MISS:
            assert set(value) == {"worker", "i"}, f"malformed entry: {value}"
            good += 1
    return good


class TestAtomicWriteRaces:
    def test_racing_writers_never_quarantine(self, tmp_path):
        """Two processes racing a put on the same shard key must both
        land a readable entry — a benign race is not corruption, so no
        ``*.corrupt`` quarantine file may appear."""
        from concurrent.futures import ProcessPoolExecutor

        key = "a1" + "0" * 62
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_hammer, str(tmp_path), key, w, 25) for w in range(4)
            ]
            reads = [f.result(timeout=60) for f in futures]
        # every read after the first put saw a well-formed entry
        assert all(r > 0 for r in reads)
        corrupt = list(tmp_path.rglob("*.corrupt"))
        assert not corrupt, f"benign write race quarantined entries: {corrupt}"
        # the surviving entry is readable by a fresh cache
        cache = ResultCache(tmp_path, enabled=True)
        value = cache.get(key)
        assert value is not MISS
        assert set(value) == {"worker", "i"}

    def test_entry_bytes_are_complete_after_put(self, tmp_path):
        """The renamed file parses standalone — the flush+fsync landed
        the whole document before os.replace published it."""
        cache = ResultCache(tmp_path, enabled=True)
        key = "b2" + "1" * 62
        cache.put(key, {"v": 7})
        doc = json.loads(cache._path(key).read_text())
        assert doc["key"] == key
        assert cache.get(key) == {"v": 7}
