"""Shared pytest fixtures and numerical helpers."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``x`` in place."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = float(x[i])
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        g[i] = (fp - fm) / (2 * eps)
    return g


def rel_err(a: np.ndarray, b: np.ndarray) -> float:
    """Max absolute error normalized by the max magnitude of ``b``."""
    denom = np.abs(b).max() + 1e-12
    return float(np.abs(np.asarray(a) - np.asarray(b)).max() / denom)
