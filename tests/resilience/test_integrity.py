"""Blob-level payload checksums: record, verify, legacy fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.codecs import get_codec
from repro.core.errors import CodecError, IntegrityError
from repro.resilience import (
    BitFlipInjector,
    payload_crc32,
    verify_blob,
    with_checksum,
)


@pytest.fixture()
def blob():
    rng = np.random.default_rng(17)
    return get_codec("linefit", delta_pct=10.0).encode(
        rng.standard_normal(2048).astype(np.float32)
    )


class TestChecksum:
    def test_with_checksum_records_payload_crc(self, blob):
        stamped = with_checksum(blob)
        assert stamped.meta["crc32"] == payload_crc32(blob.payload)
        assert stamped.payload == blob.payload

    def test_original_blob_is_untouched(self, blob):
        with_checksum(blob)
        assert "crc32" not in blob.meta

    def test_verify_passes_on_clean_blob(self, blob):
        assert verify_blob(with_checksum(blob)) is True

    def test_legacy_blob_verifies_vacuously(self, blob):
        assert verify_blob(blob) is False

    def test_checksum_survives_spec_roundtrip(self, blob):
        stamped = with_checksum(blob)
        rebuilt = type(blob).rebuild(stamped.spec(), stamped.payload)
        assert verify_blob(rebuilt) is True

    def test_bit_flip_is_caught(self, blob):
        stamped = with_checksum(blob)
        damaged = type(blob)(
            codec=stamped.codec,
            params=stamped.params,
            payload=BitFlipInjector(seed=2, ber=1e-4).corrupt_bytes(stamped.payload),
            meta=stamped.meta,
            original_bytes=stamped.original_bytes,
            compressed_bytes=stamped.compressed_bytes,
        )
        with pytest.raises(IntegrityError, match="payload checksum mismatch"):
            verify_blob(damaged, context="layer conv2d_1")

    def test_mismatch_message_names_the_context(self, blob):
        stamped = with_checksum(blob)
        damaged = type(blob)(
            codec=stamped.codec,
            params=stamped.params,
            payload=stamped.payload + b"\x00",
            meta=stamped.meta,
        )
        with pytest.raises(IntegrityError, match="conv2d_1"):
            verify_blob(damaged, context="conv2d_1")

    def test_integrity_error_is_codec_error(self):
        assert issubclass(IntegrityError, CodecError)
        assert issubclass(IntegrityError, ValueError)
