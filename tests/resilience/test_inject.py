"""Seeded injectors: determinism, rates, and the pool fault tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import FaultError
from repro.resilience import (
    BitFlipInjector,
    FlitFaultInjector,
    crash,
    crash_once,
    digest,
    hang_once,
)


class TestDigest:
    def test_bytes_and_array_views_agree(self):
        arr = np.arange(16, dtype=np.uint8)
        assert digest(arr) == digest(arr.tobytes())

    def test_distinct_payloads_distinct_digests(self):
        assert digest(b"abc") != digest(b"abd")


class TestBitFlipInjector:
    def test_same_seed_same_corruption(self):
        data = bytes(range(256)) * 64
        a = BitFlipInjector(seed=3, ber=1e-3).corrupt_bytes(data)
        b = BitFlipInjector(seed=3, ber=1e-3).corrupt_bytes(data)
        assert a == b
        assert digest(a) == digest(b)

    def test_different_seeds_differ(self):
        data = bytes(range(256)) * 64
        a = BitFlipInjector(seed=3, ber=1e-2).corrupt_bytes(data)
        b = BitFlipInjector(seed=4, ber=1e-2).corrupt_bytes(data)
        assert a != b

    def test_zero_ber_is_identity(self):
        data = b"\x00\xff" * 512
        inj = BitFlipInjector(seed=1, ber=0.0)
        assert inj.corrupt_bytes(data) == data
        arr = np.linspace(-1, 1, 333, dtype=np.float32)
        np.testing.assert_array_equal(inj.corrupt_array(arr), arr)

    def test_full_ber_flips_every_bit(self):
        data = b"\x00" * 64
        out = BitFlipInjector(seed=1, ber=1.0).corrupt_bytes(data)
        assert out == b"\xff" * 64

    def test_flip_count_tracks_rate(self):
        data = b"\x00" * 100_000  # 800k bits
        out = BitFlipInjector(seed=9, ber=1e-3).corrupt_bytes(data)
        flipped = int(
            np.unpackbits(np.frombuffer(out, dtype=np.uint8)).sum()
        )
        assert 600 < flipped < 1000  # ~800 expected

    def test_corrupt_array_preserves_shape_dtype_and_source(self):
        arr = np.linspace(-1, 1, 4096, dtype=np.float32).reshape(64, 64)
        before = arr.copy()
        out = BitFlipInjector(seed=5, ber=1e-3).corrupt_array(arr)
        assert out.shape == arr.shape and out.dtype == arr.dtype
        np.testing.assert_array_equal(arr, before)  # input untouched
        assert np.any(out.view(np.uint8) != arr.view(np.uint8))

    def test_empty_inputs(self):
        inj = BitFlipInjector(seed=0, ber=0.5)
        assert inj.corrupt_bytes(b"") == b""
        assert inj.corrupt_array(np.zeros(0, dtype=np.float32)).size == 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="bit-error rate"):
            BitFlipInjector(seed=0, ber=1.5)


class TestFlitFaultInjector:
    def test_deterministic_roll_sequence(self):
        a = FlitFaultInjector(seed=11, corrupt_prob=0.3, drop_prob=0.3)
        b = FlitFaultInjector(seed=11, corrupt_prob=0.3, drop_prob=0.3)
        rolls_a = [(a.corrupt_hop(), a.drop_packet()) for _ in range(200)]
        rolls_b = [(b.corrupt_hop(), b.drop_packet()) for _ in range(200)]
        assert rolls_a == rolls_b
        assert a.flits_corrupted == b.flits_corrupted > 0
        assert a.packets_dropped == b.packets_dropped > 0

    def test_zero_probability_never_fires(self):
        inj = FlitFaultInjector(seed=1)
        assert not any(inj.corrupt_hop() or inj.drop_packet() for _ in range(100))
        assert inj.flits_corrupted == 0 and inj.packets_dropped == 0

    def test_unit_probability_always_fires(self):
        inj = FlitFaultInjector(seed=1, corrupt_prob=1.0, drop_prob=1.0)
        assert all(inj.corrupt_hop() for _ in range(10))
        assert all(inj.drop_packet() for _ in range(10))

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError, match="drop_prob"):
            FlitFaultInjector(seed=0, drop_prob=-0.1)


class TestPoolFaultTasks:
    def test_crash_always_raises(self):
        with pytest.raises(FaultError, match="injected worker crash"):
            crash()

    def test_crash_once_fails_then_succeeds(self, tmp_path):
        sentinel = str(tmp_path / "crash.sentinel")
        with pytest.raises(FaultError, match="first attempt"):
            crash_once(sentinel, 42)
        assert crash_once(sentinel, 42) == 42
        assert crash_once(sentinel, 42) == 42  # stays recovered

    def test_hang_once_sleeps_then_returns_instantly(self, tmp_path):
        sentinel = str(tmp_path / "hang.sentinel")
        assert hang_once(sentinel, 0.05, "v") == "v"  # first call sleeps
        assert hang_once(sentinel, 0.05, "v") == "v"  # retry is instant
