"""Graceful degradation: zero-fill damaged frames, keep the rest."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import codec as wire
from repro.core.codec import HEADER_BYTES, SEGMENTS_PER_FRAME
from repro.core.compression import compress
from repro.core.errors import CodecError
from repro.resilience import DamageReport, decode_degraded


@pytest.fixture()
def stream():
    rng = np.random.default_rng(23)
    weights = rng.standard_normal(6000)
    s = compress(weights, delta=0.05)
    assert s.num_segments > 2 * SEGMENTS_PER_FRAME  # at least three frames
    return s


class TestCleanPayload:
    def test_matches_strict_decode(self, stream):
        payload = wire.encode(stream)
        clean = wire.decode(payload).decompress()
        out, report = decode_degraded(payload, clean.size)
        np.testing.assert_allclose(out, clean.astype(np.float32), rtol=1e-6)
        assert report.clean
        assert report.damaged_segments == 0
        assert report.zeroed_weights == 0
        assert not report.resynchronized


class TestDamagedPayload:
    def _flip_segment_byte(self, payload: bytes, segment: int, fmt) -> bytes:
        """Flip the first (slope) byte of one segment's body record."""
        buf = bytearray(payload)
        buf[HEADER_BYTES + segment * fmt.segment_bytes] ^= 0x40
        return bytes(buf)

    def test_damaged_frame_zeroed_others_intact(self, stream):
        payload = wire.encode(stream)
        clean = wire.decode(payload).decompress()
        damaged = self._flip_segment_byte(payload, SEGMENTS_PER_FRAME, stream.fmt)

        out, report = decode_degraded(damaged, clean.size)
        assert out.size == clean.size
        assert not report.clean
        # exactly the second frame was hit (slope byte, lengths intact)
        assert report.damaged_segments == SEGMENTS_PER_FRAME
        assert not report.resynchronized

        starts = np.concatenate([[0], np.cumsum(stream.lengths)[:-1]])
        ends = starts + stream.lengths
        lo = int(starts[SEGMENTS_PER_FRAME])
        hi = int(ends[2 * SEGMENTS_PER_FRAME - 1])
        np.testing.assert_array_equal(out[lo:hi], 0.0)
        assert report.zeroed_weights == hi - lo
        # everything outside the damaged frame regenerates untouched
        np.testing.assert_allclose(out[:lo], clean[:lo].astype(np.float32), rtol=1e-6)
        np.testing.assert_allclose(out[hi:], clean[hi:].astype(np.float32), rtol=1e-6)

    def test_accuracy_of_salvage_beats_whole_layer_zero(self, stream):
        payload = wire.encode(stream)
        clean = wire.decode(payload).decompress()
        damaged = self._flip_segment_byte(payload, 0, stream.fmt)
        out, _ = decode_degraded(damaged, clean.size)
        salvage_err = float(np.mean((out - clean) ** 2))
        zero_err = float(np.mean(clean**2))
        assert salvage_err < zero_err

    def test_output_padded_to_declared_count(self, stream):
        payload = wire.encode(stream)
        declared = int(stream.lengths.sum())
        out, report = decode_degraded(payload, declared + 100)
        assert out.size == declared + 100
        np.testing.assert_array_equal(out[-100:], 0.0)
        assert report.resynchronized
        # underrun, not overrun: nothing spilled past the declared count
        assert report.overrun_segments == 0
        assert report.overrun_weights == 0

    def test_output_truncated_to_declared_count(self, stream):
        payload = wire.encode(stream)
        declared = int(stream.lengths.sum())
        out, report = decode_degraded(payload, declared - 100)
        assert out.size == declared - 100
        assert report.resynchronized
        # the overrun is recorded, mirroring the strict decoder's
        # expected_weights bounds check (which raises instead)
        ends = np.cumsum(stream.lengths)
        assert report.overrun_segments == int(np.count_nonzero(ends > declared - 100))
        assert report.overrun_segments >= 1
        assert report.overrun_weights == 100

    def test_clean_payload_reports_no_overrun(self, stream):
        payload = wire.encode(stream)
        _, report = decode_degraded(payload, int(stream.lengths.sum()))
        assert report.overrun_segments == 0
        assert report.overrun_weights == 0

    def test_determinism(self, stream):
        damaged = self._flip_segment_byte(wire.encode(stream), 3, stream.fmt)
        declared = int(stream.lengths.sum())
        a, ra = decode_degraded(damaged, declared)
        b, rb = decode_degraded(damaged, declared)
        np.testing.assert_array_equal(a, b)
        assert ra == rb


class TestStructuralDamage:
    def test_bad_magic_still_raises(self, stream):
        payload = bytearray(wire.encode(stream))
        payload[0] ^= 0xFF
        with pytest.raises(CodecError, match="magic"):
            decode_degraded(bytes(payload), int(stream.lengths.sum()))

    def test_truncation_still_raises(self, stream):
        payload = wire.encode(stream)
        with pytest.raises(CodecError):
            decode_degraded(payload[: len(payload) // 2], int(stream.lengths.sum()))


class TestDamageReport:
    def test_clean_property(self):
        assert DamageReport(10, 0, 0, False).clean
        assert not DamageReport(10, 1, 5, False).clean
        assert not DamageReport(10, 0, 0, True).clean

    def test_overrun_implies_resynchronized(self, stream):
        payload = wire.encode(stream)
        declared = int(stream.lengths.sum())
        _, report = decode_degraded(payload, declared - 1)
        assert report.overrun_segments >= 1
        assert report.resynchronized
        assert not report.clean
