"""Fault hooks in the transaction path: flit corruption, packet drop,
memory-side data damage — all seeded and counter-audited."""

from __future__ import annotations

from repro.noc import Mesh, NocSimulator, Node, Packet, TrafficClass
from repro.noc.memory_if import MemoryInterface, ReadJob
from repro.noc.pe import PETask, ProcessingElement
from repro.resilience import FlitFaultInjector


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Packet] = []

    def on_packet(self, packet, cycle):
        self.received.append(packet)


class Sender(Node):
    def __init__(self, node_id, sendlist):
        super().__init__(node_id)
        self.sendlist = list(sendlist)

    def step(self, cycle):
        while self.sendlist and self.sendlist[0][0] <= cycle:
            _, packet = self.sendlist.pop(0)
            self.send(packet, cycle)

    @property
    def idle(self):
        return not self.sendlist


def _packet(src, dst, nbytes=64):
    return Packet(src=src, dst=dst, payload_bytes=nbytes, traffic_class=TrafficClass.WEIGHTS)


def _run(faults=None, n_packets=4):
    sim = NocSimulator(Mesh(4, 4), faults=faults)
    dst = Collector(15)
    sim.attach_node(Sender(0, [(i, _packet(0, 15)) for i in range(n_packets)]))
    sim.attach_node(dst)
    stats = sim.run()
    return stats, dst


class TestNoInjector:
    def test_counters_stay_zero(self):
        stats, dst = _run(faults=None)
        assert len(dst.received) == 4
        assert stats.flits_corrupted == 0
        assert stats.packets_dropped == 0
        assert stats.packets_corrupted == 0
        assert all(not p.corrupted for p in dst.received)


class TestLinkCorruption:
    def test_certain_corruption_taints_every_delivery(self):
        stats, dst = _run(FlitFaultInjector(seed=1, corrupt_prob=1.0))
        assert len(dst.received) == 4  # wormhole delivery still completes
        assert all(p.corrupted for p in dst.received)
        assert stats.packets_corrupted == 4
        # every link traversal rolled and hit
        assert stats.flits_corrupted == stats.flit_hops > 0

    def test_zero_probability_is_clean(self):
        stats, dst = _run(FlitFaultInjector(seed=1, corrupt_prob=0.0))
        assert all(not p.corrupted for p in dst.received)
        assert stats.flits_corrupted == 0

    def test_seeded_corruption_is_reproducible(self):
        a, _ = _run(FlitFaultInjector(seed=5, corrupt_prob=0.3))
        b, _ = _run(FlitFaultInjector(seed=5, corrupt_prob=0.3))
        assert a.flits_corrupted == b.flits_corrupted > 0
        assert a.packets_corrupted == b.packets_corrupted


class TestPacketDrop:
    def test_certain_drop_delivers_nothing(self):
        stats, dst = _run(FlitFaultInjector(seed=2, drop_prob=1.0))
        assert dst.received == []
        assert stats.packets_dropped == 4
        assert stats.packets_delivered == 0
        assert stats.flit_hops == 0  # dropped at the source, never injected

    def test_simulation_stays_live_under_partial_drop(self):
        stats, dst = _run(FlitFaultInjector(seed=3, drop_prob=0.5), n_packets=8)
        assert stats.packets_dropped + len(dst.received) == 8


class TestMemoryInterfaceFaults:
    def _wire(self, faults):
        sim = NocSimulator(Mesh(4, 4))
        mc = MemoryInterface(0, faults=faults)
        pe = ProcessingElement(5)
        pe.assign(PETask(1024, 0, 0, 0, compute_cycles=1))
        sim.attach_node(mc)
        sim.attach_node(pe)
        return sim, mc

    def test_staged_packets_marked_corrupted(self):
        sim, mc = self._wire(FlitFaultInjector(seed=4, corrupt_prob=1.0))
        mc.schedule_read(ReadJob(5, 1024, TrafficClass.WEIGHTS))
        stats = sim.run()
        assert mc.packets_corrupted > 0
        # delivery accounting sees the memory-side damage too
        assert stats.packets_corrupted == mc.packets_corrupted

    def test_no_injector_is_clean(self):
        sim, mc = self._wire(None)
        mc.schedule_read(ReadJob(5, 1024, TrafficClass.WEIGHTS))
        stats = sim.run()
        assert mc.packets_corrupted == 0
        assert stats.packets_corrupted == 0
