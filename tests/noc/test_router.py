"""Router unit tests: XY routing, credits, wormhole locks, arbitration."""

from __future__ import annotations

import pytest

from repro.noc.flit import FlitType, Flit, Packet, TrafficClass, packetize
from repro.noc.router import EAST, LOCAL, NORTH, SOUTH, WEST, Router


def _flit(dst, ftype=FlitType.HEADTAIL, seq=0):
    p = Packet(src=0, dst=dst, payload_bytes=0, traffic_class=TrafficClass.REQUEST)
    return Flit(p, ftype, seq)


def router_at(node, width=4, height=4, **kw):
    return Router(node, width, height, **kw)


class TestXYRouting:
    # 4x4 mesh: node id = y*4 + x
    @pytest.mark.parametrize(
        "node,dst,port",
        [
            (5, 5, LOCAL),
            (5, 6, EAST),
            (5, 4, WEST),
            (5, 1, NORTH),
            (5, 9, SOUTH),
            (5, 11, EAST),  # x first even when y also differs
            (5, 8, WEST),
            (0, 15, EAST),
            (12, 3, EAST),
        ],
    )
    def test_dimension_order(self, node, dst, port):
        assert router_at(node).route(dst) == port

    def test_route_is_minimal(self):
        """Every XY path length equals the Manhattan distance."""
        from repro.noc.mesh import Mesh

        mesh = Mesh(4, 4)
        for src in range(16):
            for dst in range(16):
                hops, node = 0, src
                while node != dst:
                    port = mesh.routers[node].route(dst)
                    node = mesh.neighbor(node, port)
                    hops += 1
                    assert hops <= 6
                assert hops == mesh.hop_count(src, dst)


class TestCreditsAndBuffers:
    def test_accept_until_full(self):
        r = router_at(5, buffer_depth=2)
        r.accept(_flit(6), WEST, 0)
        r.accept(_flit(6), WEST, 0)
        assert not r.can_accept(WEST)
        with pytest.raises(RuntimeError, match="overflow"):
            r.accept(_flit(6), WEST, 0)

    def test_forward_consumes_credit(self):
        r = router_at(5)
        r.accept(_flit(6), WEST, 0)
        moves = r.plan_moves(cycle=10)
        assert len(moves) == 1
        assert r.credits[EAST][0] == r.buffer_depth - 1

    def test_no_forward_without_credit(self):
        r = router_at(5)
        r.credits[EAST][0] = 0
        r.accept(_flit(6), WEST, 0)
        assert r.plan_moves(cycle=10) == []

    def test_credit_return_bounds(self):
        r = router_at(5)
        with pytest.raises(RuntimeError, match="credit overflow"):
            r.return_credit(EAST)

    def test_pipeline_delay_respected(self):
        r = router_at(5, pipeline_depth=3)
        r.accept(_flit(6), WEST, cycle=10)
        assert r.plan_moves(cycle=11) == []
        assert r.plan_moves(cycle=12) == []
        assert len(r.plan_moves(cycle=13)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            router_at(0, buffer_depth=0)


class TestWormhole:
    def _train(self, dst, n_body=2):
        p = Packet(src=0, dst=dst, payload_bytes=8 * (n_body + 1), traffic_class=TrafficClass.WEIGHTS)
        return packetize(p)  # head, bodies..., tail

    def test_lock_blocks_competing_head(self):
        r = router_at(5)
        train = self._train(6)
        r.accept(train[0], WEST, 0)  # head from west
        r.accept(_flit(6), NORTH, 0)  # competing single-flit packet
        moves = r.plan_moves(cycle=10)
        # only one output grant per cycle; head takes EAST and locks it
        assert len(moves) == 1
        in_port, out_port, flit = moves[0]
        if flit.is_head and not flit.is_tail:
            assert r.output_lock[(EAST, flit.vc)] == (in_port, flit.vc)
        # next cycle: competing head cannot steal EAST
        r.accept(train[1], WEST, 1)
        moves2 = r.plan_moves(cycle=12)
        assert all(m[0] != NORTH or m[1] != EAST for m in moves2)

    def test_tail_releases_lock(self):
        r = router_at(5)
        train = self._train(6, n_body=0)  # head + tail
        for f in train:
            r.accept(f, WEST, 0)
        r.plan_moves(cycle=10)  # head locks
        assert (EAST, 0) in r.output_lock
        r.plan_moves(cycle=11)  # tail goes
        assert (EAST, 0) not in r.output_lock

    def test_body_before_head_is_a_protocol_violation(self):
        r = router_at(5)
        train = self._train(6)
        # a body flit with no preceding head cannot be routed at all
        r.accept(train[1], NORTH, 0)
        with pytest.raises(RuntimeError, match="before its head"):
            r.plan_moves(cycle=10)


class TestArbitration:
    def test_round_robin_alternates(self):
        r = router_at(5)
        winners = []
        for cycle in range(4):
            r.accept(_flit(6), WEST, cycle * 10)
            r.accept(_flit(6), NORTH, cycle * 10)
            moves = r.plan_moves(cycle=cycle * 10 + 5)
            winners.extend(m[0] for m in moves)
            # drain: give credit back
            r.credits[EAST][0] = r.buffer_depth
            # flush the loser so queues stay comparable
            for port in r.buffers:
                for b in port:
                    b.clear()
        assert WEST in winners and NORTH in winners

    def test_conflict_counted(self):
        r = router_at(5)
        r.accept(_flit(6), WEST, 0)
        r.accept(_flit(6), NORTH, 0)
        r.plan_moves(cycle=10)
        assert r.stats.arbitration_conflicts == 1

    def test_distinct_outputs_move_in_parallel(self):
        r = router_at(5)
        r.accept(_flit(6), WEST, 0)   # -> EAST
        r.accept(_flit(4), NORTH, 0)  # -> WEST
        moves = r.plan_moves(cycle=10)
        assert len(moves) == 2
