"""Streamed-decode timing: overlap of the PE datapath with the fetch.

With ``PETask(streamed=True)`` (or ``LayerSchedule.streamed``), the
fused decode+MAC pipeline starts on the first arriving input tile, so
datapath cycles elapsed while the fetch tail is still in flight are
hidden instead of serialized after it.  These tests pin the timing
semantics in both simulators — flit-level
(:class:`~repro.noc.pe.ProcessingElement`) and transaction-level
(:class:`~repro.noc.transaction.TransactionModel`) — plus the
schedule-level plumbing and the fast-path/reference equivalence.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.codecs import LineFitCodec
from repro.core.provider import provider_for
from repro.mapping import Accelerator
from repro.mapping.accelerator import AcceleratorConfig
from repro.mapping.schedule import CompressionEffect, build_schedule
from repro.nn import zoo
from repro.noc import (
    MemoryInterface,
    Mesh,
    NocSimulator,
    PETask,
    ProcessingElement,
    ReadJob,
    TrafficClass,
)
from repro.noc import flit as flit_mod
from repro.noc.transaction import TransactionModel

from .test_fastpath import assert_stats_equal


def _single_pe_run(streamed: bool, compute_cycles: int = 500):
    flit_mod._packet_ids = itertools.count()
    sim = NocSimulator(Mesh(4, 4))
    mc = MemoryInterface(0)
    sim.attach_node(mc)
    pe = ProcessingElement(5)
    pe.assign(
        PETask(
            expect_weight_bytes=4096,
            expect_ifmap_bytes=0,
            ofmap_bytes=64,
            ofmap_dst=0,
            compute_cycles=compute_cycles,
            streamed=streamed,
        )
    )
    sim.attach_node(pe)
    mc.schedule_read(ReadJob((5,), 4096, TrafficClass.WEIGHTS))
    stats = sim.run()
    return stats, pe


class TestFlitLevelOverlap:
    def test_streamed_hides_fetch_cycles(self):
        base, base_pe = _single_pe_run(streamed=False)
        fused, fused_pe = _single_pe_run(streamed=True)
        assert fused.decode_overlap_cycles > 0
        assert base.decode_overlap_cycles == 0
        assert fused.cycles == base.cycles - fused.decode_overlap_cycles
        assert (
            fused_pe.busy_cycles
            == base_pe.busy_cycles - fused.decode_overlap_cycles
        )

    def test_overlap_capped_at_datapath_minus_one(self):
        # a tiny datapath cannot go below one exposed cycle
        _, _ = _single_pe_run(streamed=False, compute_cycles=1)
        fused, pe = _single_pe_run(streamed=True, compute_cycles=1)
        assert pe.busy_cycles == 1
        assert fused.decode_overlap_cycles == 0

    def test_overlap_never_exceeds_fetch_span(self):
        base, _ = _single_pe_run(streamed=False, compute_cycles=100_000)
        fused, pe = _single_pe_run(streamed=True, compute_cycles=100_000)
        # the hidden cycles are bounded by the fetch duration, so a
        # compute-dominated task still pays nearly all of its datapath
        assert 0 < fused.decode_overlap_cycles < base.cycles
        assert pe.busy_cycles == 100_000 - fused.decode_overlap_cycles

    def test_fast_path_matches_reference_with_streamed_tasks(self):
        def run(reference):
            flit_mod._packet_ids = itertools.count()
            acc = Accelerator(AcceleratorConfig(streamed_decode=True))
            spec = zoo.lenet5.full()
            w = spec.materialize("dense_1").ravel()
            blob = LineFitCodec(delta=0.05).encode(w)
            sched = acc.schedule_layer(
                spec.layer("dense_1"),
                compression=acc.compression_effect(provider_for(blob)),
            )
            assert sched.streamed
            sim = NocSimulator(Mesh(4, 4))
            mcs = {c: MemoryInterface(c) for c in sim.mesh.corner_ids()}
            for m in mcs.values():
                sim.attach_node(m)
            for pe_id, (wb, ib, ob, comp, dec, macs) in sched.pe_work.items():
                pe = ProcessingElement(pe_id)
                pe.assign(
                    PETask(
                        wb,
                        ib,
                        ob,
                        sim.mesh.nearest_corner(pe_id),
                        comp,
                        dec,
                        macs,
                        streamed=sched.streamed,
                    )
                )
                sim.attach_node(pe)
            for job in sched.dram_reads():
                mcs[job.mc].schedule_read(
                    ReadJob(job.dsts, job.nbytes, job.traffic_class)
                )
            return sim.run(reference=reference)

        fast = run(False)
        ref = run(True)
        assert fast.decode_overlap_cycles > 0
        assert_stats_equal(fast, ref)


class TestTransactionLevelOverlap:
    def _schedules(self):
        spec = zoo.lenet5.full()
        layer = spec.layer("dense_1")
        w = spec.materialize("dense_1").ravel()
        blob = LineFitCodec(delta=0.05).encode(w)
        mesh = Mesh(4, 4)
        base = build_schedule(
            layer, mesh, CompressionEffect.from_blob(blob, streamed=False)
        )
        fused = build_schedule(
            layer, mesh, CompressionEffect.from_blob(blob, streamed=True)
        )
        return base, fused

    def test_computation_component_shrinks(self):
        base_sched, fused_sched = self._schedules()
        txn = TransactionModel()
        base = txn.layer_latency(base_sched)
        fused = txn.layer_latency(fused_sched)
        assert fused.computation < base.computation
        assert fused.memory == base.memory
        assert fused.communication == base.communication
        assert fused.total < base.total

    def test_events_unchanged_by_timing_mode(self):
        base_sched, fused_sched = self._schedules()
        txn = TransactionModel()
        assert txn.layer_events(base_sched) == txn.layer_events(fused_sched)


class TestSchedulePlumbing:
    def test_effect_from_provider_respects_streaming_capability(self):
        w = np.random.default_rng(0).standard_normal(2000).astype(np.float32)
        linefit = provider_for(LineFitCodec(delta=0.05).encode(w))
        assert CompressionEffect.from_provider(linefit, streamed=True).streamed
        assert not CompressionEffect.from_provider(linefit, streamed=False).streamed
        materialized = provider_for(w)  # ArrayProvider: nothing to stream
        assert not CompressionEffect.from_provider(
            materialized, streamed=True
        ).streamed

    def test_uncompressed_schedule_is_never_streamed(self):
        sched = build_schedule(zoo.lenet5.full().layer("dense_1"), Mesh(4, 4))
        assert not sched.streamed

    def test_accelerator_config_controls_streamed_effects(self):
        spec = zoo.lenet5.full()
        w = spec.materialize("dense_1").ravel()
        blob = LineFitCodec(delta=0.05).encode(w)
        on = Accelerator(AcceleratorConfig(streamed_decode=True))
        off = Accelerator()
        assert on.compression_effect(provider_for(blob)).streamed
        assert not off.compression_effect(provider_for(blob)).streamed
        # per-call override beats the config default
        assert off.compression_effect(provider_for(blob), streamed=True).streamed

    def test_run_model_accepts_providers_and_is_faster_streamed(self):
        spec = zoo.lenet5.full()
        w = spec.materialize("dense_1").ravel()
        blob = LineFitCodec(delta=0.05).encode(w)
        base = Accelerator().run_model(spec, {"dense_1": provider_for(blob)})
        fused = Accelerator(AcceleratorConfig(streamed_decode=True)).run_model(
            spec, {"dense_1": provider_for(blob)}
        )
        assert fused.total_latency.total < base.total_latency.total
