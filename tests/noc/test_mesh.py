"""Mesh topology wiring."""

from __future__ import annotations

import pytest

from repro.noc.mesh import OPPOSITE, Mesh
from repro.noc.router import EAST, NORTH, SOUTH, WEST


class TestMesh:
    def test_paper_floorplan(self):
        mesh = Mesh(4, 4)
        assert mesh.corner_ids() == [0, 3, 12, 15]
        assert len(mesh.pe_ids()) == 12
        assert set(mesh.corner_ids()).isdisjoint(mesh.pe_ids())

    def test_neighbors_reciprocal(self):
        mesh = Mesh(4, 4)
        for node in range(16):
            for port in (NORTH, SOUTH, EAST, WEST):
                nb = mesh.neighbor(node, port)
                if nb is not None:
                    assert mesh.neighbor(nb, OPPOSITE[port]) == node

    def test_edges_have_no_neighbor(self):
        mesh = Mesh(4, 4)
        assert mesh.neighbor(0, NORTH) is None
        assert mesh.neighbor(0, WEST) is None
        assert mesh.neighbor(15, SOUTH) is None
        assert mesh.neighbor(15, EAST) is None

    def test_hop_count(self):
        mesh = Mesh(4, 4)
        assert mesh.hop_count(0, 15) == 6
        assert mesh.hop_count(5, 5) == 0
        assert mesh.hop_count(5, 6) == 1

    def test_nearest_corner(self):
        mesh = Mesh(4, 4)
        assert mesh.nearest_corner(1) == 0
        assert mesh.nearest_corner(2) == 3
        assert mesh.nearest_corner(13) == 12
        assert mesh.nearest_corner(11) == 15

    def test_every_pe_within_two_hops_of_its_corner(self):
        mesh = Mesh(4, 4)
        for pe in mesh.pe_ids():
            assert mesh.hop_count(pe, mesh.nearest_corner(pe)) <= 2

    def test_rectangular_mesh(self):
        mesh = Mesh(6, 2)
        assert mesh.num_nodes == 12
        assert mesh.corner_ids() == [0, 5, 6, 11]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Mesh(1, 4)
