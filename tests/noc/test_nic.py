"""Network-interface unit tests: injection queue and reassembly."""

from __future__ import annotations

import pytest

from repro.noc.flit import Packet, TrafficClass, packetize
from repro.noc.nic import NetworkInterface


def _pkt(src=0, dst=5, nbytes=24):
    return Packet(src=src, dst=dst, payload_bytes=nbytes, traffic_class=TrafficClass.WEIGHTS)


class TestInjection:
    def test_enqueue_expands_to_flits(self):
        nic = NetworkInterface(0)
        p = _pkt(nbytes=24)  # 1 + 3 flits
        nic.enqueue(p, cycle=7)
        assert nic.queued_flits == 4
        assert p.injected_cycle == 7
        assert nic.injected_packets == 1

    def test_fifo_order(self):
        nic = NetworkInterface(0)
        a, b = _pkt(nbytes=0), _pkt(nbytes=0)
        nic.enqueue(a, 0)
        nic.enqueue(b, 0)
        assert nic.pop_flit().packet is a
        assert nic.pop_flit().packet is b
        assert not nic.busy

    def test_src_validation(self):
        nic = NetworkInterface(3)
        with pytest.raises(ValueError, match="does not match"):
            nic.enqueue(_pkt(src=0), 0)

    def test_next_flit_peeks(self):
        nic = NetworkInterface(0)
        nic.enqueue(_pkt(nbytes=0), 0)
        assert nic.next_flit() is nic.next_flit()  # no consumption


class TestEjection:
    def test_packet_delivered_on_tail(self):
        nic = NetworkInterface(5)
        p = _pkt(nbytes=16)  # head + 2 payload
        flits = packetize(p)
        assert nic.eject(flits[0], 10) is None
        assert nic.eject(flits[1], 11) is None
        out = nic.eject(flits[2], 12)
        assert out is p
        assert p.delivered_cycle == 12
        assert nic.delivered_packets == 1

    def test_interleaved_packets_reassemble(self):
        nic = NetworkInterface(5)
        p1, p2 = _pkt(nbytes=16), _pkt(nbytes=16)
        f1, f2 = packetize(p1), packetize(p2)
        nic.eject(f1[0], 0)
        nic.eject(f2[0], 0)
        nic.eject(f2[1], 1)
        nic.eject(f1[1], 1)
        assert nic.eject(f1[2], 2) is p1
        assert nic.eject(f2[2], 3) is p2

    def test_missing_flits_detected(self):
        nic = NetworkInterface(5)
        p = _pkt(nbytes=16)
        flits = packetize(p)
        nic.eject(flits[0], 0)
        # tail arrives without the body flit
        with pytest.raises(RuntimeError, match="expected"):
            nic.eject(flits[2], 1)
