"""End-to-end NoC simulation: delivery, ordering, latency, liveness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import Mesh, NocSimulator, Node, Packet, TrafficClass


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Packet] = []

    def on_packet(self, packet, cycle):
        self.received.append(packet)


class Sender(Node):
    """Injects a fixed list of packets at given cycles."""

    def __init__(self, node_id, sendlist):
        super().__init__(node_id)
        self.sendlist = list(sendlist)  # (cycle, packet)

    def step(self, cycle):
        while self.sendlist and self.sendlist[0][0] <= cycle:
            _, packet = self.sendlist.pop(0)
            self.send(packet, cycle)

    @property
    def idle(self):
        return not self.sendlist


def _packet(src, dst, nbytes=32):
    return Packet(src=src, dst=dst, payload_bytes=nbytes, traffic_class=TrafficClass.WEIGHTS)


class TestDelivery:
    def test_single_packet_arrives(self):
        sim = NocSimulator(Mesh(4, 4))
        dst = Collector(15)
        sim.attach_node(Sender(0, [(0, _packet(0, 15))]))
        sim.attach_node(dst)
        stats = sim.run()
        assert len(dst.received) == 1
        assert stats.packets_delivered == 1

    def test_zero_hop_self_delivery(self):
        sim = NocSimulator(Mesh(4, 4))
        node = Collector(5)
        sim.attach_node(node)
        sim.attach_node(Sender(5, [(0, _packet(5, 5))])) if False else None
        # sender and collector on the same node: use a combined node
        class Both(Collector):
            def __init__(self):
                super().__init__(5)
                self.sent = False

            def step(self, cycle):
                if not self.sent:
                    self.send(_packet(5, 5), cycle)
                    self.sent = True

            @property
            def idle(self):
                return self.sent

        sim2 = NocSimulator(Mesh(4, 4))
        both = Both()
        sim2.attach_node(both)
        sim2.run()
        assert len(both.received) == 1

    def test_min_latency_matches_pipeline(self):
        """head inject -> (pipeline + 1) per hop + serialization."""
        sim = NocSimulator(Mesh(4, 4, pipeline_depth=2))
        dst = Collector(1)
        sim.attach_node(Sender(0, [(0, _packet(0, 1, nbytes=0))]))  # 1 flit
        sim.attach_node(dst)
        sim.run()
        p = dst.received[0]
        # 1 hop: inject (router0 buffer) + pipe(2) + link + pipe(2) + eject
        assert 4 <= p.latency <= 8

    def test_payload_accounting_per_class(self):
        sim = NocSimulator(Mesh(4, 4))
        dst = Collector(10)
        sim.attach_node(
            Sender(
                0,
                [
                    (0, _packet(0, 10, 64)),
                    (0, Packet(0, 10, 32, TrafficClass.OFMAP)),
                ],
            )
        )
        sim.attach_node(dst)
        stats = sim.run()
        assert stats.payload_bytes["weights"] == 64
        assert stats.payload_bytes["ofmap"] == 32

    def test_flit_hops_equal_flits_times_distance(self):
        sim = NocSimulator(Mesh(4, 4))
        dst = Collector(15)
        p = _packet(0, 15, 80)  # 11 flits, 6 hops
        sim.attach_node(Sender(0, [(0, p)]))
        sim.attach_node(dst)
        stats = sim.run()
        assert stats.flit_hops == p.num_flits * 6

    def test_in_order_delivery_per_flow(self):
        """Wormhole + deterministic routing => per-flow FIFO order."""
        sim = NocSimulator(Mesh(4, 4))
        dst = Collector(15)
        packets = [_packet(0, 15, 16) for _ in range(10)]
        sim.attach_node(Sender(0, [(0, p) for p in packets]))
        sim.attach_node(dst)
        sim.run()
        assert [p.pid for p in dst.received] == [p.pid for p in packets]

    def test_packets_arrive_exactly_once(self):
        sim = NocSimulator(Mesh(4, 4))
        collectors = {i: Collector(i) for i in (3, 12, 15)}
        for c in collectors.values():
            sim.attach_node(c)
        packets = []
        sendlist = []
        for i, dst in enumerate((3, 12, 15, 3, 12, 15)):
            p = _packet(0, dst, 24)
            packets.append(p)
            sendlist.append((i, p))
        sim.attach_node(Sender(0, sendlist))
        stats = sim.run()
        got = [p.pid for c in collectors.values() for p in c.received]
        assert sorted(got) == sorted(p.pid for p in packets)
        assert stats.packets_delivered == len(packets)


class TestContention:
    def test_many_to_one_hotspot_all_delivered(self):
        sim = NocSimulator(Mesh(4, 4))
        dst = Collector(5)
        sim.attach_node(dst)
        packets = []
        for src in range(16):
            if src == 5:
                continue
            p = _packet(src, 5, 40)
            packets.append(p)
            sim.attach_node(Sender(src, [(0, p)]))
        sim.run()
        assert len(dst.received) == len(packets)

    def test_all_to_all_quiesces(self):
        """Random permutation traffic: deadlock freedom under load."""
        rng = np.random.default_rng(0)
        sim = NocSimulator(Mesh(4, 4, buffer_depth=2))
        collectors = {i: Collector(i) for i in range(16)}
        total = 0
        for node_id, c in collectors.items():
            sim.attach_node(c)
        senders = []
        for src in range(16):
            sends = []
            for k in range(5):
                dst = int(rng.integers(0, 16))
                if dst == src:
                    continue
                sends.append((k * 3, _packet(src, dst, int(rng.integers(8, 120)))))
                total += 1
            # collectors are already attached; wrap sender on a ghost? ->
            # use a sender co-located via a combined node below
            senders.append((src, sends))
        # combined send+collect nodes
        sim2 = NocSimulator(Mesh(4, 4, buffer_depth=2))

        class Both(Collector):
            def __init__(self, node_id, sends):
                super().__init__(node_id)
                self.sends = sends

            def step(self, cycle):
                while self.sends and self.sends[0][0] <= cycle:
                    self.send(self.sends.pop(0)[1], cycle)

            @property
            def idle(self):
                return not self.sends

        boths = [Both(src, list(sends)) for src, sends in senders]
        for b in boths:
            sim2.attach_node(b)
        stats = sim2.run(max_cycles=100_000)
        assert sum(len(b.received) for b in boths) == total
        assert stats.cycles < 100_000

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_random_traffic_property(self, seed):
        """Any random workload quiesces with every packet delivered once."""
        rng = np.random.default_rng(seed)

        class Both(Collector):
            def __init__(self, node_id, sends):
                super().__init__(node_id)
                self.sends = sends

            def step(self, cycle):
                while self.sends and self.sends[0][0] <= cycle:
                    self.send(self.sends.pop(0)[1], cycle)

            @property
            def idle(self):
                return not self.sends

        sim = NocSimulator(Mesh(4, 4, buffer_depth=int(rng.integers(1, 5))))
        expected = 0
        nodes = []
        for src in range(16):
            sends = []
            for _ in range(int(rng.integers(0, 4))):
                dst = int(rng.integers(0, 16))
                sends.append(
                    (int(rng.integers(0, 20)), _packet(src, dst, int(rng.integers(0, 64))))
                )
                expected += 1
            sends.sort(key=lambda t: t[0])
            node = Both(src, sends)
            nodes.append(node)
            sim.attach_node(node)
        stats = sim.run(max_cycles=50_000)
        assert stats.packets_delivered == expected


class TestValidation:
    def test_duplicate_node(self):
        sim = NocSimulator(Mesh(4, 4))
        sim.attach_node(Collector(3))
        with pytest.raises(ValueError):
            sim.attach_node(Collector(3))

    def test_node_outside_mesh(self):
        sim = NocSimulator(Mesh(4, 4))
        with pytest.raises(ValueError):
            sim.attach_node(Collector(99))

    def test_max_cycles_guard(self):
        sim = NocSimulator(Mesh(4, 4))

        class Chatterbox(Node):
            def step(self, cycle):
                self.send(_packet(self.node_id, 15, 8), cycle)

            @property
            def idle(self):
                return False

        sim.attach_node(Chatterbox(0))
        sim.attach_node(Collector(15))
        with pytest.raises(RuntimeError, match="did not quiesce"):
            sim.run(max_cycles=200)
