"""Routing algorithms: minimality, deadlock freedom, delivery under each."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc import Mesh, NocSimulator, Packet, TrafficClass
from repro.noc.routing import ROUTING_ALGORITHMS, WestFirstRouting, XYRouting, YXRouting
from repro.noc.router import EAST, LOCAL, SOUTH, WEST
from repro.noc.simulator import Node


class _Both(Node):
    def __init__(self, node_id, sends):
        super().__init__(node_id)
        self.sends = list(sends)
        self.received = []

    def step(self, cycle):
        while self.sends and self.sends[0][0] <= cycle:
            self.send(self.sends.pop(0)[1], cycle)

    def on_packet(self, packet, cycle):
        self.received.append(packet)

    @property
    def idle(self):
        return not self.sends


def _pkt(src, dst, nbytes=40):
    return Packet(src=src, dst=dst, payload_bytes=nbytes, traffic_class=TrafficClass.WEIGHTS)


class TestCandidates:
    def test_xy_vs_yx_first_dimension(self):
        mesh = Mesh(4, 4)
        r = mesh.routers[5]
        # to node 11 = (x=3, y=2): XY goes east first, YX goes south first
        assert XYRouting().candidates(r, 11) == [EAST]
        assert YXRouting().candidates(r, 11) == [SOUTH]

    def test_west_first_adaptive_options(self):
        mesh = Mesh(4, 4)
        r = mesh.routers[5]
        # east+south both minimal toward node 11: west-first may pick either
        assert set(WestFirstRouting().candidates(r, 11)) == {EAST, SOUTH}

    def test_west_first_forces_west(self):
        mesh = Mesh(4, 4)
        r = mesh.routers[6]
        # to node 8 = (x=0, y=2): dx<0 so west goes first, unconditionally
        assert WestFirstRouting().candidates(r, 8) == [WEST]

    def test_local_delivery(self):
        mesh = Mesh(4, 4)
        for algo in (XYRouting(), YXRouting(), WestFirstRouting()):
            assert algo.candidates(mesh.routers[5], 5) == [LOCAL]

    def test_registry(self):
        assert set(ROUTING_ALGORITHMS) == {"xy", "yx", "west-first", "odd-even"}

    def test_mesh_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown routing"):
            Mesh(4, 4, routing="zigzag")


@pytest.mark.parametrize("routing", ["xy", "yx", "west-first", "odd-even"])
class TestDeliveryUnderEachAlgorithm:
    def test_random_traffic_all_delivered(self, routing):
        rng = np.random.default_rng(3)
        sim = NocSimulator(Mesh(4, 4, buffer_depth=2, routing=routing))
        expected = 0
        nodes = []
        for src in range(16):
            sends = []
            for k in range(4):
                dst = int(rng.integers(0, 16))
                sends.append((k * 2, _pkt(src, dst, int(rng.integers(8, 100)))))
                expected += 1
            node = _Both(src, sends)
            nodes.append(node)
            sim.attach_node(node)
        stats = sim.run(max_cycles=100_000)
        assert stats.packets_delivered == expected

    def test_latency_is_minimal_plus_overhead(self, routing):
        """All three algorithms are minimal: a lone packet's latency
        equals hops * (pipeline + 1) + serialization + O(1)."""
        sim = NocSimulator(Mesh(4, 4, routing=routing))
        dst_node = _Both(15, [])
        src_node = _Both(0, [(0, _pkt(0, 15, 0))])  # single flit, 6 hops
        sim.attach_node(src_node)
        sim.attach_node(dst_node)
        sim.run()
        p = dst_node.received[0]
        # each hop costs the router pipeline (traversal is same-cycle),
        # plus one extra pipeline pass for the ejection at the last router
        min_latency = (6 + 1) * 2
        assert min_latency <= p.latency <= min_latency + 4

    def test_worms_never_split(self, routing):
        """Multi-flit packets arrive intact under adaptive routing too."""
        sim = NocSimulator(Mesh(4, 4, routing=routing))
        dst_node = _Both(10, [])
        sends = [(0, _pkt(0, 10, 200)), (1, _pkt(3, 10, 200)), (2, _pkt(12, 10, 200))]
        sim.attach_node(dst_node)
        for src in (0, 3, 12):
            sim.attach_node(_Both(src, [s for s in sends if s[1].src == src]))
        stats = sim.run(max_cycles=50_000)
        assert len(dst_node.received) == 3  # NIC raises on split worms
