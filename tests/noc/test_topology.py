"""Topology variants: chiplet geometry, D2D latency, big-mesh parity.

Two families of guarantees:

* **geometry/semantics** — :class:`ChipletMesh` raises exactly the
  boundary-crossing input-port depths and nothing else, and a flit
  crossing a die boundary pays ``d2d_extra`` cycles over the identical
  on-die path;
* **stepper parity** — the fast cycle-skipping stepper and the naive
  reference stepper stay observationally identical on every *new*
  substrate the scale matrix sweeps (8x8, 16x16, chiplet packages,
  odd-even routing), not just the paper's 4x4.
"""

from __future__ import annotations

import itertools

import pytest

from repro.mapping import Accelerator
from repro.mapping.accelerator import AcceleratorConfig
from repro.noc import ChipletMesh, Mesh, NocSimulator, Packet, TrafficClass, build_mesh
from repro.noc import flit as flit_mod
from repro.noc.mesh import OPPOSITE
from repro.noc.patterns import PatternNode, uniform_random
from repro.noc.simulator import Node
from repro.noc.topology import TOPOLOGIES

from .test_fastpath import assert_stats_equal


def _reset_packet_ids():
    flit_mod._packet_ids = itertools.count()


class _SingleSend(Node):
    def __init__(self, node_id, sends):
        super().__init__(node_id)
        self.sends = list(sends)
        self.received = []

    def step(self, cycle):
        while self.sends and self.sends[0][0] <= cycle:
            self.send(self.sends.pop(0)[1], cycle)

    def on_packet(self, packet, cycle):
        self.received.append(packet)

    @property
    def idle(self):
        return not self.sends


def _pkt(src, dst, nbytes=0):
    return Packet(src=src, dst=dst, payload_bytes=nbytes, traffic_class=TrafficClass.WEIGHTS)


class TestChipletGeometry:
    def test_chiplet_of(self):
        mesh = ChipletMesh(2, 2, 4, 4)
        assert mesh.width == 8 and mesh.height == 8
        assert mesh.chiplet_of(0) == (0, 0)
        assert mesh.chiplet_of(7) == (1, 0)
        assert mesh.chiplet_of(8 * 7) == (0, 1)
        assert mesh.chiplet_of(63) == (1, 1)
        assert mesh.chiplet_of(3 + 8 * 3) == (0, 0)
        assert mesh.chiplet_of(4 + 8 * 3) == (1, 0)

    def test_boundary_links_count(self):
        # one vertical seam + one horizontal seam, 8 node pairs each,
        # both directions: 2 seams * 8 * 2 = 32 directed links
        mesh = ChipletMesh(2, 2, 4, 4)
        links = mesh.boundary_links()
        assert len(links) == 32
        assert all(
            mesh.chiplet_of(a) != mesh.chiplet_of(b) for a, b in links
        )

    def test_only_boundary_ports_raised(self):
        mesh = ChipletMesh(2, 2, 4, 4, pipeline_depth=2, d2d_extra=3)
        boundary_inputs = {
            (dst, OPPOSITE[port])
            for src, dst in mesh.boundary_links()
            for port in range(4)
            if mesh.neighbor_table[src][port] == dst
        }
        for node in range(mesh.num_nodes):
            for port in range(4):
                depth = mesh.routers[node].port_pipeline_depth[port]
                if (node, port) in boundary_inputs:
                    assert depth == 5, (node, port)
                else:
                    assert depth == 2, (node, port)

    def test_d2d_extra_zero_is_plain_mesh_depths(self):
        mesh = ChipletMesh(2, 2, 4, 4, d2d_extra=0)
        for r in mesh.routers:
            assert r.port_pipeline_depth == [r.pipeline_depth] * 5

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one chiplet"):
            ChipletMesh(0, 2, 4, 4)
        with pytest.raises(ValueError, match="d2d_extra"):
            ChipletMesh(2, 2, 4, 4, d2d_extra=-1)

    def test_registry_and_unknown(self):
        for name in TOPOLOGIES:
            assert build_mesh(name).num_nodes > 0
        with pytest.raises(ValueError, match="unknown topology"):
            build_mesh("torus-9")


class TestD2DLatency:
    def test_boundary_crossing_pays_exactly_d2d_extra(self):
        """Same hop count, same route shape: the cross-die packet is
        exactly ``d2d_extra`` cycles behind the on-die one."""
        latencies = {}
        for extra in (0, 3):
            _reset_packet_ids()
            mesh = ChipletMesh(2, 2, 4, 4, d2d_extra=extra)
            # row 0: node 2 -> node 5 crosses the x=3|4 seam (3 hops)
            sim = NocSimulator(mesh)
            dst = _SingleSend(5, [])
            sim.attach_node(_SingleSend(2, [(0, _pkt(2, 5))]))
            sim.attach_node(dst)
            sim.run()
            latencies[extra] = dst.received[0].latency
        assert latencies[3] == latencies[0] + 3

    def test_on_die_route_unaffected(self):
        latencies = {}
        for extra in (0, 3):
            _reset_packet_ids()
            mesh = ChipletMesh(2, 2, 4, 4, d2d_extra=extra)
            sim = NocSimulator(mesh)
            dst = _SingleSend(3 + 8 * 3, [])  # (3,3), same die as (0,0)
            sim.attach_node(_SingleSend(0, [(0, _pkt(0, 3 + 8 * 3))]))
            sim.attach_node(dst)
            sim.run()
            latencies[extra] = dst.received[0].latency
        assert latencies[3] == latencies[0]


# -- stepper parity on the scale-matrix substrates ---------------------------


def _pattern_run(mesh_factory, *, reference, rate=0.05, duration=150, seed=11):
    _reset_packet_ids()
    mesh = mesh_factory()
    sim = NocSimulator(mesh)
    for i in range(mesh.num_nodes):
        sim.attach_node(
            PatternNode(
                i, mesh.num_nodes, uniform_random, rate=rate,
                duration=duration, seed=seed,
            )
        )
    return sim.run(max_cycles=100_000, reference=reference)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: Mesh(8, 8),
        lambda: Mesh(16, 16),
        lambda: Mesh(8, 8, routing="odd-even"),
        lambda: ChipletMesh(2, 2, 4, 4, d2d_extra=2),
        lambda: ChipletMesh(3, 3, 4, 4, d2d_extra=2),
        lambda: ChipletMesh(2, 2, 4, 4, routing="odd-even", d2d_extra=3),
    ],
    ids=["mesh8", "mesh16", "mesh8-oe", "chiplet2x2", "chiplet3x3", "chiplet-oe"],
)
def test_fast_matches_reference_on_new_topologies(factory):
    fast = _pattern_run(factory, reference=False)
    ref = _pattern_run(factory, reference=True)
    assert fast.packets_delivered > 0
    assert_stats_equal(fast, ref)


def test_accelerator_chiplet_layer_matches_reference():
    """A real scheduled layer on the chiplet package, both steppers."""
    from repro.nn import zoo
    from repro.noc import MemoryInterface, PETask, ProcessingElement, ReadJob

    def _run(reference):
        _reset_packet_ids()
        acc = Accelerator(
            AcceleratorConfig(
                mesh_width=12, mesh_height=12, topology="chiplet",
                chiplet_size=4, d2d_extra=2,
            )
        )
        sched = acc.schedule_layer(zoo.lenet5.full().layer("dense_1"))
        sim = NocSimulator(acc._make_mesh())
        mcs = {c: MemoryInterface(c) for c in sim.mesh.corner_ids()}
        for mc in mcs.values():
            sim.attach_node(mc)
        for pe_id, (w, i, o, comp, dec, macs) in sched.pe_work.items():
            pe = ProcessingElement(pe_id)
            pe.assign(PETask(w, i, o, sim.mesh.nearest_corner(pe_id), comp, dec, macs))
            sim.attach_node(pe)
        for job in sched.dram_reads():
            mcs[job.mc].schedule_read(ReadJob(job.dsts, job.nbytes, job.traffic_class))
        return sim.run(reference=reference)

    fast = _run(False)
    ref = _run(True)
    assert fast.packets_delivered > 0
    assert_stats_equal(fast, ref)


class TestAcceleratorTopologyConfig:
    def test_chiplet_config_builds_chiplet_mesh(self):
        acc = Accelerator(
            AcceleratorConfig(
                mesh_width=8, mesh_height=8, topology="chiplet", chiplet_size=4
            )
        )
        mesh = acc._make_mesh()
        assert isinstance(mesh, ChipletMesh)
        assert (mesh.chiplets_x, mesh.chiplets_y) == (2, 2)

    def test_indivisible_dims_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            Accelerator(
                AcceleratorConfig(
                    mesh_width=6, mesh_height=8, topology="chiplet", chiplet_size=4
                )
            )

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            Accelerator(AcceleratorConfig(topology="hypercube"))
