"""Transaction-level model unit behaviour (agreement tests live in
tests/integration/test_transaction_vs_flit.py)."""

from __future__ import annotations


from repro.mapping.schedule import build_schedule
from repro.noc.mesh import Mesh
from repro.noc.transaction import LatencyComponents, TransactionModel
from repro.nn.arch import ArchBuilder


def _sched(in_f=400, out_f=1200):
    b = ArchBuilder("t", (1, 1, 1))
    b.set_shape((in_f,))
    b.fc("fc", out_f)
    return build_schedule(b.build().layer("fc"), Mesh(4, 4))


class TestLatencyComponents:
    def test_total(self):
        c = LatencyComponents(10, 5, 3)
        assert c.total == 18

    def test_add(self):
        c = LatencyComponents(1, 2, 3) + LatencyComponents(10, 20, 30)
        assert (c.memory, c.communication, c.computation) == (11, 22, 33)


class TestModel:
    def test_components_positive_for_real_layer(self):
        model = TransactionModel()
        lat = model.layer_latency(_sched())
        assert lat.memory > 0 and lat.communication > 0 and lat.computation > 0

    def test_memory_dominates_fc(self):
        model = TransactionModel()
        lat = model.layer_latency(_sched(4000, 4000))
        assert lat.memory > lat.communication + lat.computation

    def test_bigger_layer_costs_more(self):
        model = TransactionModel()
        small = model.layer_latency(_sched(100, 100)).total
        big = model.layer_latency(_sched(2000, 2000)).total
        assert big > 5 * small

    def test_events_bytes_conserved(self):
        model = TransactionModel()
        sched = _sched()
        ev = model.layer_events(sched)
        # DRAM-side accounting: shared ifmap counted once per MC
        assert ev["main_mem_bytes"] == (
            sched.total_dram_read_bytes + sched.total_write_bytes
        )
        assert ev["main_mem_bytes"] < sched.total_read_bytes + sched.total_write_bytes
        assert ev["macs"] >= sched.plan.total_macs

    def test_flit_hops_scale_with_volume(self):
        model = TransactionModel()
        small = model.layer_events(_sched(100, 120))["flit_hops"]
        big = model.layer_events(_sched(1000, 1200))["flit_hops"]
        assert big > 5 * small

    def test_empty_schedule_zero(self):
        # a pool layer on a tiny map still has some traffic, so build a
        # degenerate schedule by hand
        sched = _sched()
        sched.transfers = []
        sched.pe_work = {}
        model = TransactionModel()
        lat = model.layer_latency(sched)
        assert lat.total == 0
