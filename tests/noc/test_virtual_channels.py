"""Virtual channels: correctness and head-of-line-blocking relief."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc import Mesh, NocSimulator, Packet, TrafficClass
from repro.noc.router import EAST, NORTH, WEST, Router
from repro.noc.flit import packetize
from repro.noc.simulator import Node


class _Both(Node):
    def __init__(self, node_id, sends):
        super().__init__(node_id)
        self.sends = list(sends)
        self.received = []

    def step(self, cycle):
        while self.sends and self.sends[0][0] <= cycle:
            self.send(self.sends.pop(0)[1], cycle)

    def on_packet(self, packet, cycle):
        self.received.append(packet)

    @property
    def idle(self):
        return not self.sends


def _pkt(src, dst, nbytes=40):
    return Packet(src=src, dst=dst, payload_bytes=nbytes, traffic_class=TrafficClass.WEIGHTS)


class TestRouterVCs:
    def test_vc_validation(self):
        with pytest.raises(ValueError):
            Router(0, 4, 4, num_vcs=0)

    def test_buffers_per_vc(self):
        r = Router(0, 4, 4, num_vcs=2, buffer_depth=2)
        assert len(r.buffers[0]) == 2
        assert r.credits[EAST] == [2, 2]

    def test_vcs_fill_independently(self):
        r = Router(5, 4, 4, num_vcs=2, buffer_depth=1)
        p = _pkt(0, 6)
        f0 = packetize(p)[0]
        f0.vc = 0
        r.accept(f0, WEST, 0)
        assert not r.can_accept(WEST, 0)
        assert r.can_accept(WEST, 1)

    def test_locks_are_per_vc(self):
        """Two worms can hold the same output on different VCs; the
        switch still grants one flit per output per cycle."""
        r = Router(5, 4, 4, num_vcs=2)
        t0 = packetize(_pkt(0, 6, 24))
        t1 = packetize(_pkt(0, 6, 24))
        for f in t0:
            f.vc = 0
        for f in t1:
            f.vc = 1
        r.accept(t0[0], WEST, 0)
        r.accept(t1[0], NORTH, 0)
        moved = []
        for cycle in range(10, 20):
            moved += r.plan_moves(cycle)
            if len(moved) >= 2:
                break
        # both heads eventually advance, holding (EAST,0) and (EAST,1)
        assert {(EAST, 0), (EAST, 1)} <= set(r.output_lock.keys())


@pytest.mark.parametrize("num_vcs", [1, 2, 4])
class TestDeliveryWithVCs:
    def test_random_traffic_all_delivered(self, num_vcs):
        rng = np.random.default_rng(9)
        sim = NocSimulator(Mesh(4, 4, buffer_depth=2, num_vcs=num_vcs))
        expected = 0
        nodes = []
        for src in range(16):
            sends = []
            for k in range(4):
                dst = int(rng.integers(0, 16))
                sends.append((k * 2, _pkt(src, dst, int(rng.integers(8, 120)))))
                expected += 1
            node = _Both(src, sends)
            nodes.append(node)
            sim.attach_node(node)
        stats = sim.run(max_cycles=100_000)
        assert stats.packets_delivered == expected


class TestHoLBlockingRelief:
    def _crossing_latency(self, num_vcs: int) -> float:
        """A long worm to a far target shares a path segment with short
        packets; with VCs the short packets slip past the stalled worm."""
        sim = NocSimulator(Mesh(4, 4, buffer_depth=2, num_vcs=num_vcs))
        sink_far = _Both(3, [])
        sink_near = _Both(2, [])
        sends = [(0, _pkt(0, 3, 1024))]  # 129-flit worm 0 -> 3
        sends += [(1 + k, _pkt(0, 2, 0)) for k in range(6)]  # single-flit
        src = _Both(0, sends)
        for n in (sink_far, sink_near, src):
            sim.attach_node(n)
        sim.run(max_cycles=50_000)
        lats = [p.latency for p in sink_near.received]
        return float(np.mean(lats))

    def test_vcs_reduce_short_packet_latency(self):
        # the worm and the short packets share links; short packets on a
        # different VC should not wait for the whole worm serialization
        lat1 = self._crossing_latency(1)
        lat2 = self._crossing_latency(2)
        assert lat2 < lat1
