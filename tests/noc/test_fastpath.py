"""Differential tests for the fast-path simulator.

The activity-tracked, cycle-skipping stepper (:meth:`NocSimulator.step`)
must be *observationally identical* to the naive reference stepper
(:meth:`NocSimulator.step_reference`): every :class:`NocStats` field —
cycle count, hop/buffer counters, the per-link flit census, latency sum,
and the fault counters — must match exactly on the same workload with
the same seeds.  These tests pin that equivalence for every traffic
source the repo has: synthetic pattern sweeps, a real scheduled layer
(memory interfaces + processing elements), seeded fault injection, and
the multi-VC allocator.
"""

from __future__ import annotations

import itertools

import pytest

from repro.mapping import Accelerator
from repro.nn import zoo
from repro.noc import (
    Mesh,
    MemoryInterface,
    NocSimulator,
    Packet,
    PETask,
    ProcessingElement,
    ReadJob,
    TrafficClass,
)
from repro.noc import flit as flit_mod
from repro.noc.patterns import PatternNode, transpose, uniform_random
from repro.resilience import FlitFaultInjector

#: every scalar field of NocStats (link_flits / payload_bytes are
#: Counters, compared separately)
SCALAR_FIELDS = (
    "cycles",
    "flit_hops",
    "buffer_writes",
    "buffer_reads",
    "packets_delivered",
    "flits_delivered",
    "latency_sum",
    "flits_corrupted",
    "packets_dropped",
    "packets_corrupted",
    "decode_overlap_cycles",
)


def assert_stats_equal(fast, ref):
    """Field-by-field NocStats comparison, fast stepper vs reference."""
    for name in SCALAR_FIELDS:
        fv, rv = getattr(fast, name), getattr(ref, name)
        assert fv == rv, f"NocStats.{name}: fast={fv} reference={rv}"
    assert fast.link_flits == ref.link_flits, "per-link flit counts diverge"
    assert fast.payload_bytes == ref.payload_bytes


def _reset_packet_ids():
    # packet ids feed the worm-route tables; both runs must mint the
    # same id sequence for link-level state to be comparable
    flit_mod._packet_ids = itertools.count()


# -- synthetic patterns -------------------------------------------------------


def _pattern_run(pattern, rate, *, reference, duration=400, seed=3):
    _reset_packet_ids()
    mesh = Mesh()
    sim = NocSimulator(mesh)
    for i in range(mesh.num_nodes):
        sim.attach_node(
            PatternNode(
                i, mesh.num_nodes, pattern, rate=rate, duration=duration, seed=seed
            )
        )
    return sim.run(max_cycles=100_000, reference=reference)


@pytest.mark.parametrize("pattern", [uniform_random, transpose], ids=["uniform", "transpose"])
@pytest.mark.parametrize("rate", [0.02, 0.08, 0.14])
def test_pattern_sweep_matches_reference(pattern, rate):
    fast = _pattern_run(pattern, rate, reference=False)
    ref = _pattern_run(pattern, rate, reference=True)
    assert fast.packets_delivered > 0
    assert_stats_equal(fast, ref)


# -- a real scheduled layer ---------------------------------------------------


def _layer_run(*, reference, faults=None):
    _reset_packet_ids()
    acc = Accelerator()
    sched = acc.schedule_layer(zoo.lenet5.full().layer("dense_1"))
    sim = NocSimulator(Mesh(4, 4), faults=faults)
    mcs = {c: MemoryInterface(c) for c in sim.mesh.corner_ids()}
    for mc in mcs.values():
        sim.attach_node(mc)
    for pe_id, (w, i, o, comp, dec, macs) in sched.pe_work.items():
        pe = ProcessingElement(pe_id)
        pe.assign(PETask(w, i, o, sim.mesh.nearest_corner(pe_id), comp, dec, macs))
        sim.attach_node(pe)
    for job in sched.dram_reads():
        mcs[job.mc].schedule_read(ReadJob(job.dsts, job.nbytes, job.traffic_class))
    return sim.run(reference=reference)


def test_scheduled_layer_matches_reference():
    """Full accelerator workload: MCs, PEs, multicast reads, OFMAP writes."""
    fast = _layer_run(reference=False)
    ref = _layer_run(reference=True)
    assert fast.packets_delivered > 0
    assert_stats_equal(fast, ref)


def test_run_model_flit_matches_reference():
    """End-to-end: Accelerator.run_model in flit mode gives identical
    per-layer latency/events whichever stepper drives the mesh (the
    ``reference_stepper`` config hook the ablation harness toggles)."""
    from dataclasses import replace

    from repro.mapping import AcceleratorConfig

    def run_model(reference):
        _reset_packet_ids()
        cfg = replace(AcceleratorConfig(), reference_stepper=reference)
        return Accelerator(cfg).run_model(zoo.lenet5.full(), mode="flit")

    fast = run_model(False)
    ref = run_model(True)
    assert len(fast.layers) == len(ref.layers) > 0
    for fl, rl in zip(fast.layers, ref.layers):
        assert fl.layer_name == rl.layer_name
        assert fl.latency == rl.latency, fl.layer_name
        assert fl.events == rl.events, fl.layer_name
        assert fl.energy == rl.energy, fl.layer_name


def test_seeded_fault_injection_matches_reference():
    """The fault RNG draw order is part of the behavioral contract.

    Corruption rolls happen once per committed link traversal, in
    commit order; drops happen at injection.  The fast path must
    preserve both orders exactly, so identical seeds give identical
    fault counters — not merely statistically similar ones.
    """
    fast = _layer_run(
        reference=False,
        faults=FlitFaultInjector(seed=11, corrupt_prob=0.003, drop_prob=0.01),
    )
    ref = _layer_run(
        reference=True,
        faults=FlitFaultInjector(seed=11, corrupt_prob=0.003, drop_prob=0.01),
    )
    assert fast.flits_corrupted > 0, "campaign too quiet to be a real check"
    assert_stats_equal(fast, ref)


def test_pattern_fault_injection_matches_reference():
    def run(reference):
        _reset_packet_ids()
        mesh = Mesh()
        sim = NocSimulator(
            mesh, faults=FlitFaultInjector(seed=5, corrupt_prob=0.01, drop_prob=0.05)
        )
        for i in range(mesh.num_nodes):
            sim.attach_node(
                PatternNode(
                    i, mesh.num_nodes, uniform_random, rate=0.08, duration=300, seed=9
                )
            )
        return sim.run(max_cycles=100_000, reference=reference)

    fast, ref = run(False), run(True)
    assert fast.packets_dropped > 0
    assert_stats_equal(fast, ref)


# -- allocator variants -------------------------------------------------------


def test_multi_vc_matches_reference():
    """num_vcs=2 exercises the generic (non-specialized) allocator."""

    def run(reference):
        _reset_packet_ids()
        mesh = Mesh(num_vcs=2)
        sim = NocSimulator(mesh)
        for i in range(mesh.num_nodes):
            sim.attach_node(
                PatternNode(
                    i, mesh.num_nodes, uniform_random, rate=0.08, duration=300, seed=7
                )
            )
        return sim.run(max_cycles=100_000, reference=reference)

    fast, ref = run(False), run(True)
    assert fast.packets_delivered > 0
    assert_stats_equal(fast, ref)


def test_vc1_allocator_matches_generic_allocator():
    """The single-VC specialization is a pure optimization of the
    generic allocator: forcing every router onto ``_plan_generic``
    must reproduce the specialized plan move-for-move."""

    def run(force_generic):
        _reset_packet_ids()
        mesh = Mesh()
        sim = NocSimulator(mesh)
        if force_generic:
            for r in mesh.routers:
                r._plan_impl = r._plan_generic
        for i in range(mesh.num_nodes):
            sim.attach_node(
                PatternNode(
                    i, mesh.num_nodes, transpose, rate=0.10, duration=300, seed=1
                )
            )
        return sim.run(max_cycles=100_000)

    fast, generic = run(False), run(True)
    assert fast.packets_delivered > 0
    assert_stats_equal(fast, generic)


# -- liveness guard -----------------------------------------------------------


class _StuckNode(ProcessingElement):
    """A node that is never idle and never acts: the run loop must not
    let cycle skipping turn that into an infinite fast-forward."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.assign(PETask(8, 0, 0, node_id, compute_cycles=4))
        # claims it wants inputs forever; nothing will ever send them
        self.task.expect_weight_bytes = 1 << 40

    @property
    def idle(self):
        return False


def test_max_cycles_still_raises_on_deadlock():
    """Cycle skipping must charge the skipped cycles against the
    liveness budget — a wedged network still fails fast."""
    sim = NocSimulator(Mesh(4, 4))
    sim.attach_node(_StuckNode(5))
    with pytest.raises(RuntimeError, match="did not quiesce"):
        sim.run(max_cycles=2_000)


def test_max_cycles_raises_with_traffic_in_flight():
    """Same guard while flits are actually moving (credit-starved worm)."""

    class Flood(PatternNode):
        pass

    sim = NocSimulator(Mesh(4, 4))
    for i in range(16):
        sim.attach_node(
            Flood(i, 16, uniform_random, rate=1.0, duration=10_000, seed=0)
        )
    with pytest.raises(RuntimeError, match="did not quiesce"):
        sim.run(max_cycles=500)


def test_interleaved_steppers_stay_consistent():
    """step_reference resynchronizes the activity sets, so mixing the
    two steppers mid-run is legal and still quiesces correctly."""
    _reset_packet_ids()
    mesh = Mesh()
    sim = NocSimulator(mesh)
    for i in range(mesh.num_nodes):
        sim.attach_node(
            PatternNode(i, mesh.num_nodes, uniform_random, rate=0.05, duration=200, seed=2)
        )
    for _ in range(50):
        sim.step()
    for _ in range(50):
        sim.step_reference()
    stats = sim.run(max_cycles=100_000)
    ref = _pattern_run(uniform_random, 0.05, reference=True, duration=200, seed=2)
    assert_stats_equal(stats, ref)


def test_wake_node_unknown_id_raises():
    sim = NocSimulator(Mesh(4, 4))
    with pytest.raises(KeyError):
        sim.wake_node(99)


def test_send_after_detach_raises():
    """Satellite regression: Node.send without a NIC is a hard error,
    not an assert that optimization flags can strip."""
    node = PatternNode(0, 16, uniform_random, rate=1.0, duration=10, seed=0)
    with pytest.raises(RuntimeError, match="not attached"):
        node.send(
            Packet(src=0, dst=1, payload_bytes=8, traffic_class=TrafficClass.REQUEST),
            cycle=0,
        )
