"""Memory-interface and PE node models."""

from __future__ import annotations

import pytest

from repro.noc import (
    DramConfig,
    MemoryInterface,
    Mesh,
    NocSimulator,
    PEConfig,
    PETask,
    ProcessingElement,
    ReadJob,
    TrafficClass,
)


def _wire(dram=None, pe_cfg=None):
    sim = NocSimulator(Mesh(4, 4))
    mc = MemoryInterface(0, dram if dram is not None else DramConfig())
    pe = ProcessingElement(5, pe_cfg if pe_cfg is not None else PEConfig())
    sim.attach_node(mc)
    sim.attach_node(pe)
    return sim, mc, pe


class TestDramConfig:
    def test_service_cycles(self):
        cfg = DramConfig(access_latency=30, bandwidth_bytes_per_cycle=8.0)
        assert cfg.service_cycles(0) == 30
        assert cfg.service_cycles(8) == 31
        assert cfg.service_cycles(1024) == 30 + 128

    def test_read_validation(self):
        mc = MemoryInterface(0)
        with pytest.raises(ValueError):
            mc.schedule_read(ReadJob(5, 0, TrafficClass.WEIGHTS))


class TestMemoryInterface:
    def test_read_busy_time(self):
        sim, mc, pe = _wire()
        pe.assign(PETask(1024, 0, 0, 0, compute_cycles=1))
        mc.schedule_read(ReadJob(5, 1024, TrafficClass.WEIGHTS))
        sim.run()
        assert mc.busy_cycles == mc.config.service_cycles(1024)
        assert mc.bytes_read == 1024

    def test_write_accounting(self):
        sim, mc, pe = _wire()
        pe.assign(PETask(0, 0, 512, 0, compute_cycles=10))
        sim.run()
        assert mc.bytes_written == 512

    def test_reads_serialize_on_channel(self):
        """Two reads on one channel cost the sum of their service times."""
        sim = NocSimulator(Mesh(4, 4))
        mc = MemoryInterface(0)
        sim.attach_node(mc)
        for pid in (1, 4):
            pe = ProcessingElement(pid)
            pe.assign(PETask(2048, 0, 0, 0, compute_cycles=1))
            sim.attach_node(pe)
            mc.schedule_read(ReadJob(pid, 2048, TrafficClass.WEIGHTS))
        sim.run()
        assert mc.busy_cycles == 2 * mc.config.service_cycles(2048)

    def test_data_not_released_before_read_completes(self):
        sim, mc, pe = _wire(DramConfig(access_latency=100))
        pe.assign(PETask(64, 0, 0, 0, compute_cycles=1))
        mc.schedule_read(ReadJob(5, 64, TrafficClass.WEIGHTS))
        stats = sim.run()
        # service = 100 + 8 cycles before the first flit even injects
        assert stats.cycles > 100


class TestProcessingElement:
    def test_waits_for_all_inputs(self):
        sim, mc, pe = _wire()
        pe.assign(PETask(256, 128, 64, 0, compute_cycles=50, macs=1000))
        mc.schedule_read(ReadJob(5, 256, TrafficClass.WEIGHTS))
        mc.schedule_read(ReadJob(5, 128, TrafficClass.IFMAP))
        sim.run()
        assert pe.busy_cycles == 50
        assert pe.macs_done == 1000
        assert mc.bytes_written == 64

    def test_decompress_bound_datapath(self):
        task = PETask(64, 0, 0, 0, compute_cycles=10, decompress_cycles=99)
        assert task.datapath_cycles == 99

    def test_local_memory_accounting(self):
        sim, mc, pe = _wire()
        pe.assign(PETask(256, 0, 64, 0, compute_cycles=1))
        mc.schedule_read(ReadJob(5, 256, TrafficClass.WEIGHTS))
        sim.run()
        # 2x per input byte (write + read) + 1x per output byte
        assert pe.local_mem_bytes_accessed == 2 * 256 + 64

    def test_double_assign_rejected(self):
        _, _, pe = _wire()
        pe.assign(PETask(8, 0, 0, 0, compute_cycles=1))
        with pytest.raises(RuntimeError):
            pe.assign(PETask(8, 0, 0, 0, compute_cycles=1))

    def test_compute_only_task(self):
        sim, mc, pe = _wire()
        pe.assign(PETask(0, 0, 0, 0, compute_cycles=37))
        sim.run()
        assert pe.busy_cycles == 37

    def test_output_split_into_packets(self):
        sim, mc, pe = _wire(pe_cfg=PEConfig(max_packet_bytes=64))
        pe.assign(PETask(0, 0, 300, 0, compute_cycles=1))
        stats = sim.run()
        # ceil(300/64) = 5 packets
        assert stats.packets_delivered == 5


class TestDemandMode:
    """PE-issued request packets instead of a static MC schedule."""

    def _run_demand(self, dram=None):
        sim = NocSimulator(Mesh(4, 4))
        mc = MemoryInterface(0, dram if dram is not None else DramConfig())
        pe = ProcessingElement(5)
        sim.attach_node(mc)
        sim.attach_node(pe)
        pe.assign(
            PETask(1024, 256, 128, 0, compute_cycles=40, macs=100, request_mc=0)
        )
        stats = sim.run()
        return sim, mc, pe, stats

    def test_inputs_arrive_without_schedule(self):
        _, mc, pe, _ = self._run_demand()
        assert pe.busy_cycles == 40
        assert mc.bytes_read == 1024 + 256
        assert mc.bytes_written == 128

    def test_request_latency_added(self):
        """Demand mode pays the request round trip vs static scheduling."""
        sim_s = NocSimulator(Mesh(4, 4))
        mc_s = MemoryInterface(0)
        pe_s = ProcessingElement(5)
        sim_s.attach_node(mc_s)
        sim_s.attach_node(pe_s)
        pe_s.assign(PETask(1024, 256, 128, 0, compute_cycles=40, macs=100))
        mc_s.schedule_read(ReadJob(5, 1024, TrafficClass.WEIGHTS))
        mc_s.schedule_read(ReadJob(5, 256, TrafficClass.IFMAP))
        static_cycles = sim_s.run().cycles

        _, _, _, stats = self._run_demand()
        assert stats.cycles > static_cycles
        assert stats.cycles < static_cycles + 60  # just the round trip

    def test_request_traffic_accounted(self):
        _, _, _, stats = self._run_demand()
        assert stats.payload_bytes.get("request", 0) == 16  # two 8B requests
