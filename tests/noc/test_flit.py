"""Packets, flits and packetization."""

from __future__ import annotations

import pytest

from repro.noc.flit import FLIT_BYTES, FlitType, Packet, TrafficClass, packetize


class TestPacket:
    def test_flit_count_includes_header(self):
        p = Packet(src=0, dst=5, payload_bytes=64, traffic_class=TrafficClass.WEIGHTS)
        assert p.num_flits == 1 + 64 // FLIT_BYTES

    def test_partial_flit_rounds_up(self):
        p = Packet(src=0, dst=5, payload_bytes=9, traffic_class=TrafficClass.IFMAP)
        assert p.num_flits == 1 + 2

    def test_zero_payload_single_flit(self):
        p = Packet(src=0, dst=1, payload_bytes=0, traffic_class=TrafficClass.REQUEST)
        assert p.num_flits == 1

    def test_unique_ids(self):
        a = Packet(0, 1, 8, TrafficClass.WEIGHTS)
        b = Packet(0, 1, 8, TrafficClass.WEIGHTS)
        assert a.pid != b.pid

    def test_latency_requires_delivery(self):
        p = Packet(0, 1, 8, TrafficClass.WEIGHTS)
        with pytest.raises(ValueError):
            _ = p.latency
        p.injected_cycle, p.delivered_cycle = 10, 25
        assert p.latency == 15


class TestPacketize:
    def test_single_flit_packet_is_headtail(self):
        p = Packet(0, 1, 0, TrafficClass.REQUEST)
        flits = packetize(p)
        assert len(flits) == 1
        assert flits[0].ftype is FlitType.HEADTAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_train_structure(self):
        p = Packet(0, 1, 24, TrafficClass.WEIGHTS)  # 1 + 3 flits
        flits = packetize(p)
        assert [f.ftype for f in flits] == [
            FlitType.HEAD,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.TAIL,
        ]
        assert [f.seq for f in flits] == [0, 1, 2, 3]
        assert all(f.packet is p for f in flits)
