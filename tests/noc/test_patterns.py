"""Synthetic traffic patterns and load-latency characterization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc.mesh import Mesh
from repro.noc.patterns import (
    LoadPoint,
    PatternNode,
    bit_reversal,
    characterize,
    hotspot,
    transpose,
    uniform_random,
)


@pytest.fixture
def prng():
    return np.random.default_rng(0)


class TestPatterns:
    def test_uniform_never_self(self, prng):
        for src in range(16):
            for _ in range(50):
                assert uniform_random(src, 16, prng) != src

    def test_uniform_covers_all(self, prng):
        seen = {uniform_random(3, 16, prng) for _ in range(2000)}
        assert seen == set(range(16)) - {3}

    def test_transpose_mapping(self, prng):
        # node 1 = (x=1, y=0) -> (x=0, y=1) = node 4 on a 4x4 mesh
        assert transpose(1, 16, prng) == 4
        assert transpose(4, 16, prng) == 1

    def test_transpose_diagonal_falls_back(self, prng):
        assert transpose(5, 16, prng) != 5  # (1,1) maps to itself

    def test_transpose_needs_square(self, prng):
        with pytest.raises(ValueError):
            transpose(0, 12, prng)

    def test_bit_reversal(self, prng):
        # 16 nodes -> 4 bits: 0b0001 -> 0b1000
        assert bit_reversal(1, 16, prng) == 8
        assert bit_reversal(8, 16, prng) == 1

    def test_hotspot_bias(self, prng):
        hits = sum(hotspot(5, 16, prng, spot=0, fraction=0.5) == 0 for _ in range(2000))
        assert 800 < hits < 1200


class TestPatternNode:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PatternNode(0, 16, uniform_random, rate=1.5, duration=10)

    def test_generation_stops_after_duration(self):
        from repro.noc.simulator import NocSimulator

        sim = NocSimulator(Mesh(4, 4))
        nodes = [
            PatternNode(i, 16, uniform_random, rate=0.1, duration=100)
            for i in range(16)
        ]
        for n in nodes:
            sim.attach_node(n)
        stats = sim.run(max_cycles=50_000)
        generated = sum(n.generated for n in nodes)
        assert stats.packets_delivered == generated
        assert generated > 0


class TestCharacterize:
    def test_low_load_latency_near_zero_load(self):
        pts = characterize(uniform_random, [0.01, 0.05], duration=600)
        assert all(isinstance(p, LoadPoint) for p in pts)
        # low-load latency ~ hops * pipeline + serialization, well under 60
        assert pts[0].mean_latency < 60

    def test_latency_grows_with_load(self):
        pts = characterize(uniform_random, [0.01, 0.12], duration=800)
        assert pts[1].mean_latency > pts[0].mean_latency

    def test_throughput_tracks_offered_load_below_saturation(self):
        pts = characterize(uniform_random, [0.02], duration=1500)
        assert pts[0].throughput == pytest.approx(0.02, rel=0.25)

    def test_hotspot_saturates_earlier_than_uniform(self):
        rate = 0.08
        uni = characterize(uniform_random, [rate], duration=800)[0]
        hot = characterize(
            lambda s, n, r: hotspot(s, n, r, spot=5, fraction=0.5), [rate], duration=800
        )[0]
        assert hot.mean_latency > uni.mean_latency
