"""Lossless baseline compressors: round trips and the paper's claim."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.entropy import english_like_text
from repro.baselines import (
    huffman_code,
    huffman_decode,
    huffman_encode,
    huffman_ratio,
    lz_decode,
    lz_encode,
    lz_ratio,
    rle_decode,
    rle_encode,
    rle_ratio,
)


class TestRLE:
    def test_roundtrip_repetitive(self):
        data = b"a" * 300 + b"b" * 5 + b"c"
        assert rle_decode(rle_encode(data)) == data

    def test_compresses_runs(self):
        assert rle_ratio(b"x" * 1000) > 100

    def test_expands_random(self, rng):
        data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        assert rle_ratio(data) < 0.6  # 2 bytes per ~1-byte run

    def test_empty(self):
        assert rle_encode(b"") == b""
        assert rle_decode(b"") == b""
        assert rle_ratio(b"") == 1.0

    def test_odd_stream_rejected(self):
        with pytest.raises(ValueError):
            rle_decode(b"\x01")

    @given(data=st.binary(max_size=2000))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, data):
        assert rle_decode(rle_encode(data)) == data


class TestHuffman:
    def test_roundtrip(self, rng):
        data = english_like_text(3000, seed=1)
        blob, code = huffman_encode(data)
        assert huffman_decode(blob, code, len(data)) == data

    def test_text_compresses_to_entropy(self):
        data = english_like_text(1 << 16)
        # entropy ~4.2 bits/byte -> ratio ~1.8
        assert 1.5 < huffman_ratio(data) < 2.2

    def test_random_bytes_incompressible(self, rng):
        data = rng.integers(0, 256, 1 << 16, dtype=np.uint8).tobytes()
        assert huffman_ratio(data) < 1.05

    def test_single_symbol(self):
        blob, code = huffman_encode(b"aaaa")
        assert huffman_decode(blob, code, 4) == b"aaaa"

    def test_kraft_inequality(self, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        code = huffman_code(data)
        kraft = sum(2.0 ** -l for l, _ in code.table.values())
        assert kraft <= 1.0 + 1e-9

    def test_codes_prefix_free(self):
        code = huffman_code(english_like_text(4096))
        items = [(l, v) for l, v in code.table.values()]
        for i, (l1, v1) in enumerate(items):
            for l2, v2 in items[i + 1 :]:
                if l1 <= l2:
                    assert (v2 >> (l2 - l1)) != v1
                else:
                    assert (v1 >> (l1 - l2)) != v2

    @given(data=st.binary(min_size=1, max_size=1500))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        blob, code = huffman_encode(data)
        assert huffman_decode(blob, code, len(data)) == data


class TestLZ:
    def test_roundtrip_text(self):
        data = english_like_text(5000, seed=2)
        assert lz_decode(lz_encode(data)) == data

    def test_roundtrip_overlapping_match(self):
        data = b"abcabcabcabcabcabc" * 10
        assert lz_decode(lz_encode(data)) == data
        assert lz_ratio(data) > 3

    def test_random_bytes_expand_slightly(self, rng):
        data = rng.integers(0, 256, 20_000, dtype=np.uint8).tobytes()
        assert lz_ratio(data) < 1.0  # flag-byte overhead, no matches

    def test_empty(self):
        assert lz_encode(b"") == b""
        assert lz_decode(b"") == b""

    def test_corrupt_distance(self):
        # one match token with distance pointing before the start
        with pytest.raises(ValueError):
            lz_decode(bytes([0x01, 0xFF, 0x0F]))

    def test_match_at_window_boundary(self):
        # a repeat exactly one window apart must round-trip: the 12-bit
        # distance field tops out at 4095, so the encoder may not emit a
        # distance-4096 match (it used to, corrupting the stream)
        block = np.random.default_rng(5).integers(
            0, 256, 4096, dtype=np.uint8
        ).tobytes()
        data = block + block
        assert lz_decode(lz_encode(data)) == data

    @given(data=st.binary(max_size=1500))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert lz_decode(lz_encode(data)) == data


class TestPaperClaim:
    """Sec. III-B: traditional compression is ineffective on weights."""

    @pytest.fixture(scope="class")
    def weight_bytes(self):
        from repro.nn import zoo

        w = zoo.lenet5.full().materialize("dense_1").ravel()
        return np.ascontiguousarray(w).view(np.uint8).tobytes()

    def test_all_baselines_fail_on_weights(self, weight_bytes):
        assert rle_ratio(weight_bytes) < 1.05
        assert huffman_ratio(weight_bytes) < 1.25
        assert lz_ratio(weight_bytes) < 1.05

    def test_proposed_lossy_compressor_succeeds(self, weight_bytes):
        from repro.core import compress_percent
        from repro.nn import zoo

        w = zoo.lenet5.full().materialize("dense_1").ravel()
        assert compress_percent(w, 15.0).compression_ratio > 2.0
