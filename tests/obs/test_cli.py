"""CLI ``--obs`` flag, REPRO_OBS fallback, and elapsed-time accounting."""

from __future__ import annotations

import json
import re
import time
from types import SimpleNamespace

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import __main__ as cli


def _fake_experiment(monkeypatch, name: str = "fake"):
    module = SimpleNamespace(
        run=lambda fast=False: "ok",
        render=lambda result: f"rendered {result}",
    )
    monkeypatch.setitem(ALL_EXPERIMENTS, name, module)
    return module


class TestParseArgs:
    def test_obs_flag_with_value(self):
        assert cli._parse_args(["tab1", "--obs", "out"]) == (["tab1"], "out")

    def test_obs_equals_form(self):
        assert cli._parse_args(["--obs=out", "tab1"]) == (["tab1"], "out")

    def test_obs_without_value_is_usage_error(self, capsys):
        assert cli._parse_args(["--obs"]) == 2
        assert "--obs requires" in capsys.readouterr().out

    def test_unknown_option_is_usage_error(self, capsys):
        assert cli._parse_args(["--frobnicate"]) == 2
        assert "unknown option" in capsys.readouterr().out

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "envdir")
        assert cli._parse_args(["tab1"]) == (["tab1"], "envdir")
        # the flag wins over the environment
        assert cli._parse_args(["tab1", "--obs", "flagdir"]) == (["tab1"], "flagdir")

    def test_no_obs_anywhere(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert cli._parse_args(["tab1"]) == (["tab1"], None)


class TestElapsedAccounting:
    def test_elapsed_survives_wall_clock_jump(self, monkeypatch, capsys):
        """Regression: elapsed time must come from ``perf_counter``.

        ``time.time()`` is free to jump backwards (NTP step); a CLI
        timed with it would print a negative elapsed.  Sabotage the wall
        clock and assert the printed time stays non-negative.
        """
        _fake_experiment(monkeypatch)
        state = {"t": 1_000_000.0}

        def jumping_wall_clock():
            state["t"] -= 3600.0  # every look at the wall clock goes backwards
            return state["t"]

        monkeypatch.setattr(time, "time", jumping_wall_clock)
        assert cli.main(["fake"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"\[fake: (-?[\d.]+)s", out)
        assert match, out
        assert float(match.group(1)) >= 0.0


class TestObsOutputs:
    def test_obs_dir_gets_per_experiment_and_session_dumps(
        self, monkeypatch, tmp_path
    ):
        _fake_experiment(monkeypatch)
        assert cli.main(["fake", "--obs", str(tmp_path)]) == 0
        for where in (tmp_path, tmp_path / "fake"):
            trace = json.loads((where / "trace.json").read_text())
            assert trace["traceEvents"], where
            doc = json.loads((where / "metrics.json").read_text())
            assert doc["metrics"], where
        # the per-experiment dump records the run under its root span
        scoped = json.loads((tmp_path / "fake" / "trace.json").read_text())
        names = {e["name"] for e in scoped["traceEvents"]}
        assert "experiment.fake" in names
        # the session dump labels every row with its experiment and
        # names one process track per experiment
        session = json.loads((tmp_path / "metrics.json").read_text())
        assert all(
            r["labels"].get("experiment") == "fake" for r in session["metrics"]
        )
        session_trace = json.loads((tmp_path / "trace.json").read_text())
        procs = [
            e for e in session_trace["traceEvents"] if e.get("name") == "process_name"
        ]
        assert procs and procs[0]["args"]["name"] == "fake"

    def test_without_obs_no_files_are_written(self, monkeypatch, tmp_path):
        _fake_experiment(monkeypatch)
        monkeypatch.delenv("REPRO_OBS", raising=False)
        monkeypatch.chdir(tmp_path)
        assert cli.main(["fake"]) == 0
        assert list(tmp_path.iterdir()) == []
