"""Observability wired through the grid runner, cache, and NoC.

The headline invariant: a serial and a parallel run of the same grid
produce *identical* metric dumps and structurally identical traces,
modulo wall-clock-valued metrics (``*_seconds``).  And with the default
:data:`repro.obs.NULL` scope, nothing is recorded anywhere.
"""

from __future__ import annotations

import json

import repro.obs as obs
from repro.noc import Mesh, NocSimulator, Node, Packet, TrafficClass
from repro.obs import Obs, is_time_metric, write_outputs
from repro.runtime import GridTask, ResultCache, run_tasks

from .test_trace import assert_spans_balanced


def _observed_square(x: int) -> int:
    """Grid point that records spans and metrics (module-level: picklable)."""
    o = obs.current()
    with o.span("task.compute", cat="test", x=x):
        o.count("task.calls")
        o.count("task.value_total", x * x)
        o.observe("task.sleep_seconds", 0.001)  # time-valued: excluded from identity
    return x * x


def _grid(n: int = 6) -> list[GridTask]:
    return [
        GridTask(fn=_observed_square, args=(i,), key=f"{i:064x}") for i in range(n)
    ]


def _run(jobs: int, cache: ResultCache) -> tuple[list, Obs]:
    scope = Obs(pid=0)
    with obs.use(scope):
        results = run_tasks(_grid(), jobs=jobs, cache=cache)
    return results, scope


def _identity_rows(scope: Obs) -> list[dict]:
    """Metric rows minus wall-clock values — the comparable dump."""
    return [r for r in scope.metrics.snapshot() if not is_time_metric(r["name"])]


def _trace_shape(scope: Obs) -> list[tuple]:
    """Structure of the trace without timestamps or args."""
    return [(e["ph"], e.get("name"), e["tid"]) for e in scope.trace.events]


class TestSerialParallelIdentity:
    def test_cold_cache(self, tmp_path):
        r1, serial = _run(jobs=1, cache=ResultCache(tmp_path / "a", enabled=True))
        r2, parallel = _run(jobs=2, cache=ResultCache(tmp_path / "b", enabled=True))
        assert r1 == r2 == [i * i for i in range(6)]
        assert _identity_rows(serial) == _identity_rows(parallel)
        assert _trace_shape(serial) == _trace_shape(parallel)
        # the dump proves the work happened: per-task metrics summed in
        # task order, cache misses and puts counted once per point
        assert serial.metrics.value("task.calls") == 6
        assert serial.metrics.value("task.value_total") == sum(i * i for i in range(6))
        assert serial.metrics.value("cache.misses") == 6
        assert serial.metrics.value("cache.puts") == 6

    def test_warm_cache(self, tmp_path):
        cache_a = ResultCache(tmp_path / "a", enabled=True)
        cache_b = ResultCache(tmp_path / "b", enabled=True)
        _run(jobs=1, cache=cache_a)
        _run(jobs=2, cache=cache_b)
        r1, serial = _run(jobs=1, cache=cache_a)
        r2, parallel = _run(jobs=2, cache=cache_b)
        assert r1 == r2
        assert _identity_rows(serial) == _identity_rows(parallel)
        # warm: every point is a hit, no task ran, no worker spans exist
        assert serial.metrics.value("cache.hits") == 6
        assert serial.metrics.value("task.calls") == 0.0
        assert _trace_shape(serial) == []

    def test_trace_is_valid_and_tracked_per_task(self, tmp_path):
        _, scope = _run(jobs=2, cache=ResultCache(tmp_path / "c", enabled=True))
        events = scope.trace.events
        assert_spans_balanced(events)
        # one track per task (tid = task index + 1), named via metadata
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {i + 1: f"task {i}" for i in range(6)}
        # every worker span was re-parented onto its task's track
        for i in range(6):
            task_spans = [e for e in events if e.get("tid") == i + 1 and e["ph"] == "B"]
            assert [e["name"] for e in task_spans] == ["task.compute"]
        # the dispatch span itself lives on the main track
        main = [e["name"] for e in events if e["tid"] == 0 and e["ph"] == "B"]
        assert main == ["pool.run_tasks"]

    def test_histogram_records_per_task_durations(self, tmp_path):
        _, scope = _run(jobs=1, cache=ResultCache(tmp_path / "d", enabled=True))
        row = [
            r for r in scope.metrics.snapshot() if r["name"] == "pool.task_run_seconds"
        ][0]
        assert row["kind"] == "histogram"
        assert row["count"] == 6


class TestDisabledPath:
    def test_default_scope_is_null(self):
        assert obs.current() is obs.NULL
        assert not obs.enabled()

    def test_null_records_nothing(self):
        obs.NULL.count("x")
        obs.NULL.gauge("x", 1.0)
        obs.NULL.observe("x", 1.0)
        with obs.NULL.span("x"):
            pass
        assert len(obs.NULL.metrics) == 0
        assert obs.NULL.trace.events == []

    def test_null_span_is_a_shared_object(self):
        # zero-allocation guard: the disabled span path must not build
        # context managers per call
        assert obs.NULL.span("a") is obs.NULL.span("b")

    def test_run_tasks_without_scope_touches_nothing(self):
        before = len(obs.NULL.metrics)
        results = run_tasks(_grid(3), jobs=1)
        assert results == [0, 1, 4]
        assert len(obs.NULL.metrics) == before
        assert obs.NULL.trace.events == []

    def test_use_restores_previous_scope(self):
        with obs.use(Obs()) as scope:
            assert obs.current() is scope
        assert obs.current() is obs.NULL


# -- NoC counters -------------------------------------------------------------


class _Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_packet(self, packet, cycle):
        self.received.append(packet)


class _Sender(Node):
    def __init__(self, node_id, sendlist):
        super().__init__(node_id)
        self.sendlist = list(sendlist)

    def step(self, cycle):
        while self.sendlist and self.sendlist[0][0] <= cycle:
            _, packet = self.sendlist.pop(0)
            self.send(packet, cycle)

    @property
    def idle(self):
        return not self.sendlist


def _sim() -> NocSimulator:
    sim = NocSimulator(Mesh(4, 4))
    packets = [
        (c, Packet(src=0, dst=15, payload_bytes=64, traffic_class=TrafficClass.WEIGHTS))
        for c in (0, 3, 10)
    ]
    sim.attach_node(_Sender(0, packets))
    sim.attach_node(_Collector(15))
    return sim


class TestNocCounters:
    def test_enabled_run_exports_phase_counters(self):
        sim = _sim()
        scope = Obs()
        with obs.use(scope):
            stats = sim.run()
        m = scope.metrics
        assert m.value("noc.cycles.total") == sim.cycle
        assert m.value("noc.cycles.stepped") >= 1
        # phase split: stepped + fast-forwarded(empty) + fast-forwarded(stall)
        # tile the whole run
        ff = m.value("noc.cycles.fast_forwarded", reason="network_empty") + m.value(
            "noc.cycles.fast_forwarded", reason="pipeline_stall"
        )
        assert m.value("noc.cycles.stepped") + ff == sim.cycle
        assert m.value("noc.flits.delivered") == stats.flits_delivered > 0
        assert m.value("noc.packets.delivered") == 3
        assert m.value("noc.mean_packet_latency") == stats.mean_packet_latency > 0
        spans = [e["name"] for e in scope.trace.events if e["ph"] == "B"]
        assert spans == ["noc.run"]

    def test_disabled_run_records_nothing(self):
        sim = _sim()
        before = len(obs.NULL.metrics)
        sim.run()
        assert len(obs.NULL.metrics) == before
        assert not sim._obs_track

    def test_repeat_runs_export_per_run_deltas(self):
        sim = _sim()
        with obs.use(Obs()) as first:
            sim.run()
        assert first.metrics.value("noc.cycles.total") == sim.cycle > 0
        # nothing left to simulate: the second run's delta is zero even
        # though the simulator's cumulative counters are not
        with obs.use(Obs()) as second:
            sim.run()
        assert second.metrics.value("noc.cycles.total") == 0
        assert second.metrics.value("noc.flits.delivered") == 0


# -- disk outputs -------------------------------------------------------------


class TestWriteOutputs:
    def test_files_parse_and_are_nonempty(self, tmp_path):
        scope = Obs(pid=0)
        with obs.use(scope):
            run_tasks(_grid(3), jobs=1)
        out = write_outputs(scope, tmp_path / "dump")
        trace = json.loads((out / "trace.json").read_text())
        assert trace["traceEvents"]
        assert_spans_balanced(
            [e for e in trace["traceEvents"] if e["ph"] in "BE"]
        )
        doc = json.loads((out / "metrics.json").read_text())
        assert doc["version"] == 1
        names = {r["name"] for r in doc["metrics"]}
        assert "task.calls" in names
        csv_lines = (out / "metrics.csv").read_text().splitlines()
        assert csv_lines[0] == "name,kind,labels,value,count,sum"
        assert len(csv_lines) == 1 + len(doc["metrics"])
