"""Span tracer: Chrome trace-event structure, adoption, track naming."""

from __future__ import annotations

from repro.obs import Tracer


def assert_spans_balanced(events: list[dict]) -> None:
    """Every ``B`` has a matching later ``E`` on the same (pid, tid)."""
    stacks: dict[tuple, list[str]] = {}
    for e in events:
        assert "pid" in e and "tid" in e, e
        track = (e["pid"], e["tid"])
        if e["ph"] == "B":
            stacks.setdefault(track, []).append(e["name"])
        elif e["ph"] == "E":
            assert stacks.get(track), f"E without B on {track}: {e}"
            assert stacks[track].pop() == e["name"]
    for track, stack in stacks.items():
        assert not stack, f"unclosed spans on {track}: {stack}"


class TestSpans:
    def test_span_emits_matched_begin_end(self):
        t = Tracer(pid=1)
        with t.span("work", cat="test", delta=5.0):
            pass
        assert [e["ph"] for e in t.events] == ["B", "E"]
        begin, end = t.events
        assert begin["name"] == end["name"] == "work"
        assert begin["cat"] == "test"
        assert begin["pid"] == end["pid"] == 1
        assert begin["tid"] == end["tid"] == 0
        assert end["ts"] >= begin["ts"] >= 0
        assert begin["args"] == {"delta": 5.0}
        assert_spans_balanced(t.events)

    def test_nested_spans_balance(self):
        t = Tracer(pid=1)
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        assert [(e["ph"], e["name"]) for e in t.events] == [
            ("B", "outer"), ("B", "inner"), ("E", "inner"),
            ("B", "inner"), ("E", "inner"), ("E", "outer"),
        ]
        assert_spans_balanced(t.events)

    def test_span_closes_on_exception(self):
        t = Tracer(pid=1)
        try:
            with t.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert_spans_balanced(t.events)

    def test_non_primitive_args_coerced_to_repr(self):
        t = Tracer(pid=1)
        with t.span("work", payload=[1, 2]):
            pass
        assert t.events[0]["args"]["payload"] == "[1, 2]"

    def test_instant_event(self):
        t = Tracer(pid=1)
        t.instant("marker", cat="test")
        (e,) = t.events
        assert e["ph"] == "i" and e["name"] == "marker" and e["s"] == "t"


class TestTrackNaming:
    def test_thread_and_process_names_are_metadata_events(self):
        t = Tracer(pid=1)
        t.thread_name(3, "task 3")
        t.process_name(7, "tab2")
        meta = {(e["name"], e["pid"], e["tid"]): e["args"]["name"] for e in t.events}
        assert meta[("thread_name", 1, 3)] == "task 3"
        assert meta[("process_name", 7, 0)] == "tab2"

    def test_repeat_naming_is_deduped(self):
        t = Tracer(pid=1)
        t.thread_name(3, "task 3")
        t.thread_name(3, "task 3")
        assert len(t.events) == 1


class TestAdopt:
    def _foreign(self):
        w = Tracer(pid=999, tid=0)
        with w.span("task.work", cat="test"):
            pass
        return w

    def test_adopt_rewrites_pid_tid_and_shifts_ts(self):
        parent = Tracer(pid=1)
        foreign = self._foreign()
        parent.adopt(foreign.events, tid=5, at_ts=1000.0, track_name="task 4")
        spans = [e for e in parent.events if e["ph"] in "BE"]
        assert all(e["pid"] == 1 and e["tid"] == 5 for e in spans)
        assert min(e["ts"] for e in spans) == 1000.0
        assert_spans_balanced(parent.events)

    def test_adopt_copies_instead_of_mutating(self):
        foreign = self._foreign()
        before = [dict(e) for e in foreign.events]
        Tracer(pid=1).adopt(foreign.events, tid=2, at_ts=0.0)
        assert foreign.events == before

    def test_adopt_names_the_track(self):
        parent = Tracer(pid=1)
        parent.adopt(self._foreign().events, tid=5, track_name="task 4")
        meta = [e for e in parent.events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "task 4"

    def test_adopt_empty_is_a_noop(self):
        parent = Tracer(pid=1)
        parent.adopt([], tid=5, track_name="never")
        assert parent.events == []


class TestChromeDocument:
    def test_shape(self):
        import json

        t = Tracer(pid=1)
        with t.span("work"):
            pass
        doc = json.loads(json.dumps(t.chrome()))
        assert isinstance(doc["traceEvents"], list)
        assert len(doc["traceEvents"]) == 2
        assert doc["displayTimeUnit"] == "ms"
