"""Metrics registry: instrument semantics, label keying, merge rules."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, is_time_metric
from repro.obs.registry import DEFAULT_BUCKETS, Histogram


class TestCounter:
    def test_add_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.counter("hits").add()
        reg.counter("hits").add(2.5)
        assert reg.value("hits") == 3.5

    def test_absent_value_uses_default(self):
        assert MetricsRegistry().value("nope", default=-1.0) == -1.0


class TestGauge:
    def test_set_is_last_writer_wins(self):
        reg = MetricsRegistry()
        reg.gauge("temp").set(10.0)
        reg.gauge("temp").set(3.0)
        assert reg.value("temp") == 3.0


class TestHistogram:
    def test_observe_places_in_buckets(self):
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(1.0)  # equal to a bound lands in that bound's bucket
        h.observe(5.0)
        h.observe(100.0)  # overflow
        row = h.row()
        assert row["count"] == 4
        assert row["sum"] == pytest.approx(106.5)
        assert [b["le"] for b in row["buckets"]] == [1.0, 10.0, "+Inf"]
        assert [b["count"] for b in row["buckets"]] == [2, 1, 1]

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="ascending"):
            Histogram(buckets=(1.0, 1.0))

    def test_default_buckets_are_seconds_flavored(self):
        assert DEFAULT_BUCKETS[0] < 0.01 < DEFAULT_BUCKETS[-1]


class TestLabels:
    def test_labels_key_distinct_instruments(self):
        reg = MetricsRegistry()
        reg.counter("flits", direction="in").add(3)
        reg.counter("flits", direction="out").add(7)
        assert reg.value("flits", direction="in") == 3
        assert reg.value("flits", direction="out") == 7

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").add()
        reg.counter("x", b="2", a="1").add()
        assert reg.value("x", a="1", b="2") == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x").add()
        with pytest.raises(TypeError, match="counter"):
            reg.gauge("x")


class TestSnapshot:
    def test_rows_are_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b").add(1)
        reg.gauge("a").set(2)
        reg.histogram("c").observe(0.5)
        rows = reg.snapshot()
        assert [r["name"] for r in rows] == ["a", "b", "c"]
        assert [r["kind"] for r in rows] == ["gauge", "counter", "histogram"]
        for row in rows:
            assert isinstance(row["labels"], dict)

    def test_snapshot_is_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("n", layer="fc").add(4)
        reg.histogram("h").observe(1.0)
        json.dumps(reg.snapshot())  # must not raise


class TestMerge:
    def test_counters_sum_gauges_take_incoming(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").add(2)
        a.gauge("g").set(1.0)
        b.counter("n").add(3)
        b.gauge("g").set(9.0)
        a.merge(b)
        assert a.value("n") == 5
        assert a.value("g") == 9.0

    def test_histograms_sum_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(0.002)
        b.histogram("h").observe(0.002)
        b.histogram("h").observe(30.0)
        a.merge(b)
        row = [r for r in a.snapshot() if r["name"] == "h"][0]
        assert row["count"] == 3
        assert row["sum"] == pytest.approx(30.004)

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_prefix_and_labels_rescope_incoming_rows(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        child.counter("tasks").add(4)
        parent.merge(child, prefix="sweep.", labels={"experiment": "tab2"})
        assert parent.value("sweep.tasks", experiment="tab2") == 4
        assert parent.value("tasks") == 0.0

    def test_merge_is_commutative_for_counters(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("n").add(1)
        second.counter("n").add(2)
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(first)
        ab.merge(second)
        ba.merge(second)
        ba.merge(first)
        assert ab.snapshot() == ba.snapshot()


class TestTimeMetricConvention:
    def test_seconds_suffix_marks_wall_clock_values(self):
        assert is_time_metric("task_seconds")
        assert is_time_metric("pool.task_run_seconds")
        assert not is_time_metric("tasks")
        assert not is_time_metric("seconds_total")
