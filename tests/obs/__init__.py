"""Observability layer: metrics registry, span tracer, cross-process merge."""
