"""Link-utilization analysis."""

from __future__ import annotations

import pytest

from repro.analysis.linkstats import link_utilization, render_link_report
from repro.noc import Mesh, NocSimulator, Packet, TrafficClass
from repro.noc.simulator import Node


class _OneShot(Node):
    def __init__(self, node_id, dst, nbytes):
        super().__init__(node_id)
        self.dst, self.nbytes = dst, nbytes
        self.sent = False

    def step(self, cycle):
        if not self.sent:
            self.send(Packet(self.node_id, self.dst, self.nbytes, TrafficClass.WEIGHTS), cycle)
            self.sent = True

    @property
    def idle(self):
        return self.sent


class TestLinkUtilization:
    def _run(self):
        sim = NocSimulator(Mesh(4, 4))
        sim.attach_node(_OneShot(0, 3, 80))  # 11 flits east along row 0
        sim.attach_node(Node(3))
        stats = sim.run()
        return stats, sim.mesh

    def test_flits_counted_per_link(self):
        stats, mesh = self._run()
        links = link_utilization(stats, mesh)
        # 3 eastbound links on row 0, 11 flits each
        assert len(links) == 3
        assert all(l.flits == 11 and l.port == "east" for l in links)
        assert {(l.src, l.dst) for l in links} == {(0, 1), (1, 2), (2, 3)}

    def test_utilization_normalized_by_cycles(self):
        stats, mesh = self._run()
        links = link_utilization(stats, mesh)
        for l in links:
            assert 0 < l.utilization <= 1.0
            assert l.utilization == pytest.approx(l.flits / stats.cycles)

    def test_sorted_descending(self):
        stats, mesh = self._run()
        links = link_utilization(stats, mesh)
        flits = [l.flits for l in links]
        assert flits == sorted(flits, reverse=True)

    def test_requires_completed_run(self):
        from repro.noc.simulator import NocStats

        with pytest.raises(ValueError):
            link_utilization(NocStats(), Mesh(4, 4))

    def test_render(self):
        stats, mesh = self._run()
        out = render_link_report(link_utilization(stats, mesh))
        assert "->" in out and "flits" in out
