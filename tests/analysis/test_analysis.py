"""Entropy, breakdowns and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.breakdown import LayerBars, normalize_series
from repro.analysis.entropy import byte_entropy, english_like_text, random_bytes
from repro.analysis.report import render_bars, render_table


class TestEntropy:
    def test_uniform_bytes_max_entropy(self):
        assert byte_entropy(random_bytes(1 << 20)) == pytest.approx(8.0, abs=0.01)

    def test_constant_bytes_zero_entropy(self):
        assert byte_entropy(b"\x00" * 1000) == 0.0

    def test_two_symbols_one_bit(self):
        assert byte_entropy(b"ab" * 5000) == pytest.approx(1.0, abs=1e-9)

    def test_text_entropy_in_known_band(self):
        bits = byte_entropy(english_like_text(1 << 18))
        assert 3.5 < bits < 5.0

    def test_gaussian_float32_near_random(self):
        w = np.random.default_rng(0).normal(size=200_000).astype(np.float32)
        assert byte_entropy(w) > 7.0

    def test_empty(self):
        assert byte_entropy(b"") == 0.0

    def test_array_measured_over_raw_bytes(self):
        w = np.zeros(1000, dtype=np.float32)
        assert byte_entropy(w) == 0.0

    def test_deterministic_sources(self):
        assert random_bytes(100, seed=1) == random_bytes(100, seed=1)
        assert english_like_text(100, seed=1) == english_like_text(100, seed=1)


class TestBreakdownHelpers:
    def test_layer_bars_total(self):
        b = LayerBars(label="x", parts={"a": 1.0, "b": 2.0})
        assert b.total == 3.0

    def test_normalize_series(self):
        assert normalize_series([4.0, 2.0, 1.0]) == [1.0, 0.5, 0.25]

    def test_normalize_with_baseline(self):
        assert normalize_series([2.0], baseline=4.0) == [0.5]

    def test_normalize_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize_series([0.0, 1.0])

    def test_empty_series(self):
        assert normalize_series([]) == []


class TestRendering:
    def test_table_alignment(self):
        out = render_table(["a", "bb"], [["x", 1.5], ["yy", 2.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.50" in out and "2.25" in out

    def test_table_scientific_for_tiny_values(self):
        out = render_table(["v"], [[1.5e-7]])
        assert "1.50e-07" in out

    def test_bars_contain_labels_and_totals(self):
        bars = [
            LayerBars("conv1", {"mem": 0.8, "comm": 0.2}),
            LayerBars("dense", {"mem": 0.4, "comm": 0.1}),
        ]
        out = render_bars(bars, title="B")
        assert "conv1" in out and "dense" in out
        assert "(1.000)" in out and "(0.500)" in out

    def test_bars_empty(self):
        assert render_bars([], title="nothing") == "nothing"
