"""Roofline classification of accelerator layers."""

from __future__ import annotations

import pytest

from repro.analysis.roofline import machine_balance, roofline
from repro.core import compress_percent
from repro.mapping import Accelerator
from repro.nn import zoo
from repro.nn.arch import ArchBuilder


def _sched(acc, layer, **kw):
    return acc.schedule_layer(layer, **kw)


class TestMachineBalance:
    def test_paper_configuration(self):
        b = machine_balance()
        assert b.peak_macs_per_cycle == 12 * 64
        assert b.peak_dram_bytes_per_cycle == 32.0
        assert b.balance == pytest.approx(24.0)


class TestRoofline:
    def test_fc_layer_is_memory_bound(self):
        """FC layers do 1 MAC per weight: intensity << balance."""
        acc = Accelerator()
        b = ArchBuilder("t", (1, 1, 1))
        b.set_shape((400,))
        b.fc("fc", 1200)
        r = roofline(_sched(acc, b.build().layer("fc")))
        assert r.bound == "memory"
        assert r.intensity < 1.0

    def test_conv_layer_intensity_higher(self):
        """Convs reuse each weight across the spatial map."""
        acc = Accelerator()
        b = ArchBuilder("t", (64, 28, 28))
        b.conv("conv", 128, 3, pad=1, bias=False)
        r_conv = roofline(_sched(acc, b.build().layer("conv")))
        b2 = ArchBuilder("t", (1, 1, 1))
        b2.set_shape((1024,))
        b2.fc("fc", 1024)
        r_fc = roofline(_sched(acc, b2.build().layer("fc")))
        assert r_conv.intensity > r_fc.intensity

    def test_compression_raises_intensity(self):
        """Shrinking the weight stream moves the layer toward the
        compute roof — the paper's mechanism in roofline terms."""
        acc = Accelerator()
        spec = zoo.lenet5.full()
        layer = spec.layer("dense_1")
        base = roofline(_sched(acc, layer))
        w = spec.materialize("dense_1").ravel()
        eff = acc.compression_effect(compress_percent(w, 15.0))
        comp = roofline(_sched(acc, layer, compression=eff))
        assert comp.intensity > base.intensity
        assert comp.attainable_macs_per_cycle > base.attainable_macs_per_cycle

    def test_attainable_capped_by_compute_roof(self):
        b = machine_balance()
        acc = Accelerator()
        bld = ArchBuilder("t", (64, 28, 28))
        bld.conv("conv", 512, 3, pad=1, bias=False)
        r = roofline(_sched(acc, bld.build().layer("conv")), b)
        assert r.attainable_macs_per_cycle <= b.peak_macs_per_cycle

    def test_whole_lenet_is_memory_bound(self):
        acc = Accelerator()
        spec = zoo.lenet5.full()
        from repro.mapping.accelerator import SIMULATED_KINDS

        for layer in spec.layers:
            if layer.kind not in SIMULATED_KINDS or layer.macs == 0:
                continue
            r = roofline(_sched(acc, layer))
            assert r.bound == "memory", layer.name
