"""Transaction-level model validation against the flit-level simulator.

DESIGN.md ablation 2: the fast model must track the cycle-accurate
ground truth across layer shapes and compression levels, because the
paper's large-network results are produced with it.
"""

from __future__ import annotations

import pytest

from repro.core import compress_percent
from repro.mapping import Accelerator
from repro.nn import zoo
from repro.nn.arch import ArchBuilder


def _layers():
    out = []
    b = ArchBuilder("fc", (1, 1, 1))
    b.set_shape((400,))
    b.fc("fc_small", 120)
    out.append(b.build().layer("fc_small"))
    b = ArchBuilder("fc2", (1, 1, 1))
    b.set_shape((1024,))
    b.fc("fc_large", 2048)
    out.append(b.build().layer("fc_large"))
    b = ArchBuilder("conv", (3, 28, 28))
    b.conv("conv", 16, 5, pad=2)
    out.append(b.build().layer("conv"))
    b = ArchBuilder("pool", (16, 14, 14))
    b.pool("pool", 2)
    out.append(b.build().layer("pool"))
    return out


class TestAgreement:
    @pytest.mark.parametrize("layer", _layers(), ids=lambda l: l.name)
    def test_layer_latency_within_25pct(self, layer):
        acc = Accelerator()
        sched = acc.schedule_layer(layer)
        flit = acc.run_layer(sched, mode="flit")
        txn = acc.run_layer(sched, mode="txn")
        assert txn.latency.total == pytest.approx(flit.latency.total, rel=0.25)

    def test_whole_lenet_within_15pct(self):
        acc = Accelerator()
        spec = zoo.lenet5.full()
        flit = acc.run_model(spec, mode="flit").total_latency.total
        txn = acc.run_model(spec, mode="txn").total_latency.total
        assert txn == pytest.approx(flit, rel=0.15)

    def test_compressed_lenet_within_15pct(self):
        acc = Accelerator()
        spec = zoo.lenet5.full()
        w = spec.materialize("dense_1").ravel()
        eff = acc.compression_effect(compress_percent(w, 15.0))
        flit = acc.run_model(spec, {"dense_1": eff}, mode="flit").total_latency.total
        txn = acc.run_model(spec, {"dense_1": eff}, mode="txn").total_latency.total
        assert txn == pytest.approx(flit, rel=0.15)

    def test_savings_predictions_agree(self):
        """The *relative* savings — the paper's actual metric — must
        match even more tightly than absolute latency."""
        acc = Accelerator()
        spec = zoo.lenet5.full()
        w = spec.materialize("dense_1").ravel()
        eff = acc.compression_effect(compress_percent(w, 15.0))
        flit_base = acc.run_model(spec, mode="flit").total_latency.total
        flit_comp = acc.run_model(spec, {"dense_1": eff}, mode="flit").total_latency.total
        txn_base = acc.run_model(spec, mode="txn").total_latency.total
        txn_comp = acc.run_model(spec, {"dense_1": eff}, mode="txn").total_latency.total
        assert txn_comp / txn_base == pytest.approx(flit_comp / flit_base, abs=0.06)

    def test_energy_within_10pct(self):
        acc = Accelerator()
        spec = zoo.lenet5.full()
        flit = acc.run_model(spec, mode="flit").total_energy.total
        txn = acc.run_model(spec, mode="txn").total_energy.total
        assert txn == pytest.approx(flit, rel=0.10)
