"""Whole-system integration: the Fig.-8 flow joined with the accelerator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compress_percent, knee_point, pareto_front
from repro.core.codec import decode, encode
from repro.core.pareto import DesignPoint
from repro.core.pipeline import CompressionPipeline
from repro.datasets import train_test
from repro.mapping import Accelerator
from repro.nn import TrainConfig, train
from repro.nn.zoo import lenet5


@pytest.fixture(scope="module")
def system():
    split = train_test("digits", 2000, 500, seed=11)
    model = lenet5.proxy(np.random.default_rng(11))
    train(model, split.x_train, split.y_train, TrainConfig(epochs=5, lr=0.05))
    acc = Accelerator()
    spec = lenet5.full()
    return model, split, acc, spec


class TestFullFlow:
    def test_delta_sweep_produces_usable_pareto_space(self, system):
        model, split, acc, spec = system
        pipeline = CompressionPipeline(model, split.x_test, split.y_test)
        weights = spec.materialize("dense_1").ravel()
        base = acc.run_model(spec, mode="txn")

        points = []
        for delta in (0.0, 10.0, 20.0):
            record = pipeline.run_delta(delta)
            eff = acc.compression_effect(compress_percent(weights, delta))
            res = acc.run_model(spec, {"dense_1": eff}, mode="txn")
            points.append(
                DesignPoint(
                    label=f"x-{delta:.0f}",
                    accuracy=record.top1,
                    latency=res.total_latency.total / base.total_latency.total,
                    energy=res.total_energy.total / base.total_energy.total,
                )
            )
        front = pareto_front(points)
        assert front  # never empty
        best = knee_point(points, max_accuracy_drop=0.5)
        assert best.latency <= min(p.latency for p in points) + 1e-9

    def test_compressed_stream_survives_transport(self, system):
        """Compress -> serialize (as the MC would ship it) -> decode ->
        decompress -> same approximated weights reach the PE."""
        _, _, _, spec = system
        w = spec.materialize("dense_1").ravel()
        stream = compress_percent(w, 10.0)
        shipped = decode(encode(stream))
        np.testing.assert_array_equal(shipped.decompress(), stream.decompress())

    def test_wire_size_matches_simulated_traffic(self, system):
        """The byte volume the accelerator simulates for the compressed
        layer equals the actual codec output size (minus the O(1) header)."""
        _, _, acc, spec = system
        from repro.core.codec import HEADER_BYTES, frame_trailer_bytes
        from repro.noc.flit import TrafficClass

        w = spec.materialize("dense_1").ravel()
        stream = compress_percent(w, 10.0)
        eff = acc.compression_effect(stream)
        layer = spec.layer("dense_1")
        sched = acc.schedule_layer(layer, compression=eff)
        simulated = sum(
            t.nbytes
            for t in sched.transfers
            if t.traffic_class is TrafficClass.WEIGHTS
        )
        # the O(1) header and the integrity trailer are excluded from the
        # CR accounting (and thus from the simulated traffic volume)
        actual = (
            len(encode(stream))
            - HEADER_BYTES
            - frame_trailer_bytes(stream.num_segments)
        )
        assert simulated == pytest.approx(actual, rel=0.02)

    def test_accuracy_latency_energy_all_move_as_claimed(self, system):
        """The paper's abstract, qualitatively: at a moderate delta the
        latency and energy drop substantially while accuracy moves little."""
        model, split, acc, spec = system
        pipeline = CompressionPipeline(model, split.x_test, split.y_test)
        weights = spec.materialize("dense_1").ravel()
        base = acc.run_model(spec, mode="txn")
        record = pipeline.run_delta(15.0)
        eff = acc.compression_effect(compress_percent(weights, 15.0))
        res = acc.run_model(spec, {"dense_1": eff}, mode="txn")
        assert record.top1 >= pipeline.baseline.top1 - 0.10
        assert res.total_latency.total < 0.85 * base.total_latency.total
        assert res.total_energy.total < 0.80 * base.total_energy.total
