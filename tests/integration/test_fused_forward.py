"""Fused streamed-weight forward == materialized forward, zoo-wide.

For every model in the zoo, the first parametric layer's full-scale
weights are driven through the fused decode+MAC path
(``forward(weight_provider=...)``) and compared against the classic
materialized forward.  Two provider flavors are exercised:

* :class:`ArrayProvider` over the exact same weights — results must be
  **bit-identical** (same dtype, same blocked GEMM accumulation order is
  not required, so equality is checked to float32 resolution);
* :class:`StreamProvider` over the line-fit compressed stream, with the
  materialized pass using the same *decoded* weights — both paths then
  consume identical values, so any difference is a streaming bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compression import compress
from repro.core.decompressor import decompress_accumulate
from repro.core.provider import ArrayProvider, provider_for
from repro.nn import zoo
from repro.nn.arch import LayerKind
from repro.nn.layers import Conv2D, Dense, DepthwiseConv2D


def _first_parametric(spec):
    return spec.parametric_layers()[0]


def _build_layer(layer_spec, weights):
    """An nn layer matching the spec's weight tensor, loaded with it.

    Stride/padding do not affect weight consumption, so minimal values
    keep the activation volume small while the weights stay full-scale.
    """
    shape = layer_spec.weight_shape
    if layer_spec.kind is LayerKind.CONV:
        o, i, k, _ = shape
        layer = Conv2D(i, o, k, bias=False, name=layer_spec.name)
    elif layer_spec.kind is LayerKind.DWCONV:
        c, _, k, _ = shape
        layer = DepthwiseConv2D(c, k, bias=False, name=layer_spec.name)
    elif layer_spec.kind is LayerKind.FC:
        fin, fout = shape
        layer = Dense(fin, fout, bias=False, name=layer_spec.name)
    else:  # pragma: no cover - zoo first layers are all parametric kinds
        raise AssertionError(f"unexpected kind {layer_spec.kind}")
    layer.weight.data = weights.reshape(shape).astype(np.float32)
    return layer


def _small_input(layer, rng):
    if isinstance(layer, Dense):
        return rng.standard_normal((3, layer.in_features)).astype(np.float32)
    k = layer.kernel_size
    c = layer.in_channels if isinstance(layer, Conv2D) else layer.channels
    side = max(k, 6)
    return rng.standard_normal((2, c, side, side)).astype(np.float32)


@pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
def test_first_layer_fused_equals_materialized(module):
    spec = module.full()
    layer_spec = _first_parametric(spec)
    weights = spec.materialize(layer_spec.name).ravel()
    layer = _build_layer(layer_spec, weights)
    x = _small_input(layer, np.random.default_rng(11))

    ref = layer.forward(x)
    out = layer.forward(x, weight_provider=ArrayProvider(weights))
    np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)


@pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
def test_first_layer_streamed_compressed_equals_materialized(module):
    spec = module.full()
    layer_spec = _first_parametric(spec)
    weights = spec.materialize(layer_spec.name).ravel()
    stream = compress(weights, delta=0.05)
    decoded = decompress_accumulate(stream)

    layer = _build_layer(layer_spec, decoded)
    x = _small_input(layer, np.random.default_rng(13))
    ref = layer.forward(x)
    out = layer.forward(x, weight_provider=provider_for(stream))
    np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)


def test_dense_and_depthwise_layers_covered():
    """The zoo's first layers are convs; cover Dense/DWConv explicitly."""
    lenet = zoo.lenet5.full()
    fc = next(l for l in lenet.parametric_layers() if l.kind is LayerKind.FC)
    w = lenet.materialize(fc.name).ravel()
    layer = _build_layer(fc, w)
    x = _small_input(layer, np.random.default_rng(17))
    np.testing.assert_allclose(
        layer.forward(x, weight_provider=ArrayProvider(w)),
        layer.forward(x),
        rtol=1e-5,
        atol=1e-5,
    )

    mobile = zoo.mobilenet.full()
    dw = next(
        l for l in mobile.parametric_layers() if l.kind is LayerKind.DWCONV
    )
    w = mobile.materialize(dw.name).ravel()
    layer = _build_layer(dw, w)
    x = _small_input(layer, np.random.default_rng(19))
    np.testing.assert_allclose(
        layer.forward(x, weight_provider=ArrayProvider(w)),
        layer.forward(x),
        rtol=1e-5,
        atol=1e-5,
    )


def test_training_with_provider_rejected():
    layer = Dense(8, 4, name="fc")
    x = np.zeros((1, 8), dtype=np.float32)
    provider = ArrayProvider(layer.weight.data.ravel())
    with pytest.raises(ValueError, match="inference-only"):
        layer.forward(x, training=True, weight_provider=provider)


def test_provider_size_mismatch_rejected():
    layer = Dense(8, 4, name="fc")
    x = np.zeros((1, 8), dtype=np.float32)
    with pytest.raises(ValueError, match="provider yields"):
        layer.forward(x, weight_provider=ArrayProvider(np.zeros(5)))
