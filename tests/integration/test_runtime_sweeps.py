"""The runtime acceptance contract: serial, parallel, and warm-cache
sweeps produce identical records, and warm reruns skip the work.

One LeNet-5 proxy is trained once (module-scoped, in a temp cache) and
shared by the pipeline-level and experiment-level assertions.
"""

from __future__ import annotations

import pytest

from repro.core.multilayer import optimize_multilayer
from repro.core.pipeline import CompressionPipeline
from repro.experiments import table2_compression
from repro.experiments.common import trained_proxy
from repro.nn import zoo
from repro.runtime import ResultCache, Timings

DELTAS = (5.0, 15.0)


@pytest.fixture(scope="module")
def lenet_proxy(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("repro-cache")
    import os

    old = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = str(cache_root)
    try:
        model, split = trained_proxy(zoo.lenet5, seed=3, fast=True)
        yield model, split
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = old


class TestPipelineSweep:
    def test_serial_parallel_warm_identical(self, lenet_proxy, tmp_path):
        model, split = lenet_proxy
        pipeline = CompressionPipeline(model, split.x_test, split.y_test)
        cache = ResultCache(tmp_path, enabled=True)

        serial = pipeline.sweep(DELTAS, jobs=1)
        parallel = pipeline.sweep(DELTAS, jobs=4)
        cold, warm = Timings(), Timings()
        cached = pipeline.sweep(DELTAS, jobs=4, cache=cache, timings=cold)
        warmed = pipeline.sweep(DELTAS, jobs=1, cache=cache, timings=warm)

        assert serial == parallel == cached == warmed
        assert cold.counters["tasks_run"] == len(DELTAS)
        # the warm rerun did no encode/evaluate work at all
        assert warm.counters.get("tasks_run", 0) == 0
        assert warm.counters["cache_hits"] == len(DELTAS)
        assert warm.counters.get("task_seconds", 0.0) == 0.0

    def test_cache_distinguishes_codec_and_delta(self, lenet_proxy, tmp_path):
        model, split = lenet_proxy
        cache = ResultCache(tmp_path, enabled=True)
        linefit = CompressionPipeline(model, split.x_test, split.y_test)
        huffman = CompressionPipeline(
            model, split.x_test, split.y_test, codec="huffman"
        )
        linefit.sweep((5.0,), cache=cache)
        t = Timings()
        huffman.sweep((5.0,), cache=cache, timings=t)  # same delta, other codec
        linefit.sweep((10.0,), cache=cache, timings=t)  # other delta
        assert t.counters["tasks_run"] == 2
        assert t.counters.get("cache_hits", 0) == 0

    def test_cache_distinguishes_weights(self, lenet_proxy, tmp_path):
        model, split = lenet_proxy
        cache = ResultCache(tmp_path, enabled=True)
        CompressionPipeline(model, split.x_test, split.y_test).sweep(
            (5.0,), cache=cache
        )
        original = model.get_weights("dense_1").copy()
        try:
            model.set_weights("dense_1", original * 1.01)
            t = Timings()
            CompressionPipeline(model, split.x_test, split.y_test).sweep(
                (5.0,), cache=cache, timings=t
            )
        finally:
            model.set_weights("dense_1", original)
        assert t.counters["tasks_run"] == 1


class TestTable2Sweep:
    def test_serial_parallel_warm_identical(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        serial = table2_compression.sweep_model(zoo.lenet5, fast=True)
        parallel = table2_compression.sweep_model(zoo.lenet5, fast=True, jobs=4)
        cold, warm = Timings(), Timings()
        cached = table2_compression.sweep_model(
            zoo.lenet5, fast=True, jobs=4, cache=cache, timings=cold
        )
        warmed = table2_compression.sweep_model(
            zoo.lenet5, fast=True, cache=cache, timings=warm
        )
        assert serial == parallel == cached == warmed
        assert cold.counters["tasks_run"] == cold.counters["tasks"]
        assert warm.counters.get("tasks_run", 0) == 0
        assert warm.counters["cache_hits"] == warm.counters["tasks"]


class TestMultilayerSweep:
    def test_parallel_candidates_match_serial(self, lenet_proxy, tmp_path):
        model, split = lenet_proxy
        kwargs = dict(
            spec=zoo.lenet5.full(),
            x_test=split.x_test,
            y_test=split.y_test,
            max_accuracy_drop=0.05,
            delta_grid=(5.0, 15.0),
            top_k=zoo.lenet5.TOP_K,
        )
        serial = optimize_multilayer(model, **kwargs)
        parallel = optimize_multilayer(model, jobs=4, **kwargs)
        cache = ResultCache(tmp_path, enabled=True)
        cold = optimize_multilayer(model, cache=cache, **kwargs)
        t = Timings()
        warm = optimize_multilayer(model, cache=cache, timings=t, **kwargs)
        assert serial == parallel == cold == warm
        assert t.counters.get("tasks_run", 0) == 0
