"""End-to-end: any registered codec through pipeline, archive, accelerator.

The acceptance test of the codec subsystem: the same Fig. 8 flow runs
under the paper's line-fit compressor and the lossless baselines, the
lossless runs change nothing (CR ~= 1, accuracy exactly the baseline),
and the line-fit run reproduces the reference implementation's CR
figures unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compression import compress_percent
from repro.core.model_store import compress_model, load_archive
from repro.core.multilayer import optimize_multilayer
from repro.core.pipeline import CompressionPipeline
from repro.datasets import train_test
from repro.mapping import Accelerator
from repro.nn import TrainConfig, evaluate, train
from repro.nn.zoo import lenet5


@pytest.fixture(scope="module")
def trained():
    split = train_test("digits", 2500, 500, seed=13)
    model = lenet5.proxy(np.random.default_rng(13))
    train(model, split.x_train, split.y_train, TrainConfig(epochs=6, lr=0.05))
    return model, split


DELTAS = (0.0, 10.0, 20.0)


class TestCrossCodecSweep:
    @pytest.mark.parametrize("codec", ["huffman", "rle"])
    def test_lossless_codecs_change_nothing(self, trained, codec):
        model, split = trained
        pipe = CompressionPipeline(model, split.x_test, split.y_test, codec=codec)
        base = pipe.baseline
        for rec in pipe.sweep(DELTAS):
            # exact reconstruction: accuracy is bit-identical to baseline
            assert rec.top1 == base.top1
            assert rec.top5 == base.top5
            assert rec.mse == 0.0
            # weight streams are high-entropy: CR stays ~1 (RLE even
            # expands; Huffman squeezes only a few % of byte skew) —
            # nowhere near the line-fit codec's lossy ratios
            assert 0.4 <= rec.cr <= 1.15
            assert rec.num_segments == 0

    def test_linefit_reproduces_reference_crs(self, trained):
        model, split = trained
        pipe = CompressionPipeline(model, split.x_test, split.y_test)
        w = model.get_weights(pipe.layer_name).ravel()
        for rec in pipe.sweep(DELTAS):
            ref = compress_percent(w, rec.delta_pct)
            assert rec.cr == pytest.approx(ref.compression_ratio, rel=1e-12)
            assert rec.num_segments == ref.num_segments
            assert rec.mse == pytest.approx(ref.mse(w), rel=1e-12)

    def test_linefit_zero_delta_hits_paper_anchor(self, trained):
        model, split = trained
        pipe = CompressionPipeline(model, split.x_test, split.y_test)
        rec = pipe.run_delta(0.0)
        # the paper's Tab. II delta=0 anchor (all models land on ~1.21)
        assert rec.cr == pytest.approx(1.21, abs=0.03)


class TestArchiveAcrossCodecs:
    @pytest.mark.parametrize("codec", ["linefit", "huffman"])
    def test_file_roundtrip_restores_inference(self, trained, tmp_path, codec):
        model, split = trained
        archive = compress_model(model, {"dense_1": 10.0}, codec=codec)
        path = tmp_path / f"{codec}.npz"
        archive.to_file(path)
        loaded = load_archive(path)
        assert loaded.codecs["dense_1"]["name"] == codec

        fresh = lenet5.proxy(np.random.default_rng(77))
        loaded.apply(fresh)
        if codec == "huffman":
            # lossless archive restores the exact trained model
            np.testing.assert_array_equal(
                fresh.get_weights("dense_1"), model.get_weights("dense_1")
            )
        base = evaluate(model, split.x_test, split.y_test).top1
        acc = evaluate(fresh, split.x_test, split.y_test).top1
        assert acc > base - 0.10

    def test_lossless_archive_is_not_smaller(self, trained):
        model, _ = trained
        linefit = compress_model(model, {"dense_1": 15.0}, codec="linefit")
        huffman = compress_model(model, {"dense_1": 15.0}, codec="huffman")
        assert linefit.weights_footprint() < huffman.weights_footprint()


class TestAcceleratorAcrossCodecs:
    def test_effects_for_every_codec(self):
        spec = lenet5.full()
        acc = Accelerator()
        base = acc.run_model(spec, mode="txn").total_latency.total
        latencies = {}
        for codec in ("linefit", "huffman", "rle"):
            effects = acc.effects_for(spec, {"dense_1": 15.0}, codec=codec)
            res = acc.run_model(spec, effects, mode="txn")
            latencies[codec] = res.total_latency.total
        # line-fit at delta 15% genuinely shrinks the weight traffic
        assert latencies["linefit"] < base
        # RLE expands the stream: latency must not improve on baseline
        assert latencies["rle"] >= base
        # lossless codecs stay within a whisker of the uncompressed run
        assert latencies["huffman"] == pytest.approx(base, rel=0.10)

    def test_run_model_accepts_raw_blobs(self):
        from repro.core.codecs import get_codec

        spec = lenet5.full()
        acc = Accelerator()
        blob = get_codec("linefit", delta_pct=15.0).encode(
            spec.materialize("dense_1", seed=0).ravel()
        )
        via_blob = acc.run_model(spec, {"dense_1": blob}, mode="txn")
        via_effect = acc.run_model(
            spec, {"dense_1": acc.compression_effect(blob)}, mode="txn"
        )
        assert via_blob.total_latency.total == via_effect.total_latency.total


class TestOptimizerAcrossCodecs:
    def test_lossless_codec_yields_no_saving_and_no_drop(self, trained):
        model, split = trained
        plan = optimize_multilayer(
            model,
            lenet5.full(),
            split.x_test,
            split.y_test,
            max_accuracy_drop=0.05,
            delta_grid=(10.0,),
            codec="rle",
        )
        # RLE expands float32 weight streams -> savings clamp to zero,
        # and exact reconstruction keeps accuracy at the baseline
        assert plan.saving_bytes == 0
        assert plan.accuracy == plan.baseline_accuracy
