"""The Fig.-8 evaluation flow on a trainable LeNet-5.

Run:  python examples/compress_lenet.py

Trains LeNet-5 on the synthetic digits dataset, selects the compression
target with the paper's policy (deepest largest layer -> ``dense_1``),
sweeps the tolerance delta, and prints accuracy vs compression ratio —
the accuracy half of the paper's Fig. 10a.
"""

import numpy as np

from repro.core import CompressionPipeline, select_layer_model
from repro.datasets import train_test
from repro.nn import TrainConfig, evaluate, train
from repro.nn.zoo import lenet5

split = train_test("digits", 3000, 600, seed=7)
model = lenet5.proxy(np.random.default_rng(7))

print("training LeNet-5 on synthetic digits...")
train(model, split.x_train, split.y_train,
      TrainConfig(epochs=6, batch_size=64, lr=0.05))
base = evaluate(model, split.x_test, split.y_test)
print(f"baseline: {base}")

target = select_layer_model(model)
print(f"selected layer (paper policy): {target}\n")

pipeline = CompressionPipeline(model, split.x_test, split.y_test,
                               layer_name=target)
print("delta    CR     segments   MSE        top-1")
for record in pipeline.sweep([0, 5, 10, 15, 20]):
    print(
        f"{record.delta_pct:>4.0f}%  {record.cr:5.2f}  "
        f"{record.num_segments:>9,}  {record.mse:.3e}  {record.top1:.4f}"
    )

print("\nthe accuracy cliff: very aggressive compression destroys the layer")
extreme = pipeline.run_delta(60.0)
print(f"  60%  {extreme.cr:5.1f}  top-1 {extreme.top1:.4f}")
