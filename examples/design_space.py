"""Multi-objective design-space exploration (the paper's contribution 3).

Run:  python examples/design_space.py

Sweeps the tolerance delta on LeNet-5, combines proxy accuracy with
simulated latency/energy into design points, extracts the Pareto front
and picks the paper's headline operating point: the fastest
configuration within a 5% accuracy-degradation budget.
"""

import numpy as np

from repro.core import (
    CompressionPipeline,
    DesignPoint,
    compress_percent,
    knee_point,
    pareto_front,
)
from repro.datasets import train_test
from repro.mapping import Accelerator
from repro.nn import TrainConfig, train
from repro.nn.zoo import lenet5

# --- accuracy axis: trained proxy + delta sweep -------------------------
split = train_test("digits", 3000, 600, seed=7)
model = lenet5.proxy(np.random.default_rng(7))
print("training LeNet-5 proxy...")
train(model, split.x_train, split.y_train,
      TrainConfig(epochs=6, batch_size=64, lr=0.05))
pipeline = CompressionPipeline(model, split.x_test, split.y_test)

# --- latency/energy axis: accelerator simulation of the full model ------
acc = Accelerator()
spec = lenet5.full()
base = acc.run_model(spec, mode="flit")
weights = spec.materialize("dense_1").ravel()

points = []
deltas = (0.0, 5.0, 10.0, 15.0, 20.0, 30.0)
for delta in deltas:
    record = pipeline.run_delta(delta)
    effect = acc.compression_effect(compress_percent(weights, delta))
    result = acc.run_model(spec, {"dense_1": effect}, mode="flit")
    points.append(
        DesignPoint(
            label=f"x-{delta:.0f}",
            accuracy=record.top1,
            latency=result.total_latency.total / base.total_latency.total,
            energy=result.total_energy.total / base.total_energy.total,
        )
    )

print(f"\n{'config':<8}{'accuracy':>10}{'latency':>10}{'energy':>10}")
front = pareto_front(points)
for p in points:
    mark = "  *" if p in front else ""
    print(f"{p.label:<8}{p.accuracy:>10.4f}{p.latency:>10.3f}{p.energy:>10.3f}{mark}")
print("(* = Pareto-optimal)")

best = knee_point(points, max_accuracy_drop=0.05,
                  baseline_accuracy=pipeline.baseline.top1)
print(
    f"\nheadline point (<=5% accuracy drop): {best.label} — "
    f"{1 - best.latency:.1%} latency and {1 - best.energy:.1%} energy reduction "
    f"at top-1 {best.accuracy:.4f}"
)
