"""Cycle-accurate NoC inference with and without weight compression.

Run:  python examples/noc_inference.py

Simulates a full LeNet-5 inference on the paper's accelerator (4x4
mesh, corner memory interfaces, twelve PEs with 8 KB local memories) at
flit-level cycle accuracy, then repeats with ``dense_1`` compressed at
delta = 15%.  Prints per-layer latency breakdowns (the paper's Fig. 2)
and the end-to-end savings (the mechanism behind Fig. 10).
"""

from repro.analysis import latency_bars, render_bars
from repro.core import compress_percent
from repro.mapping import Accelerator
from repro.nn.zoo import lenet5

acc = Accelerator()
spec = lenet5.full()

print("simulating uncompressed LeNet-5 (flit-level, cycle accurate)...")
base = acc.run_model(spec, mode="flit")
print(render_bars(latency_bars(base),
                  title="per-layer latency breakdown (uncompressed)"))

weights = spec.materialize("dense_1")
stream = compress_percent(weights.ravel(), 15.0)
effect = acc.compression_effect(stream)
print(f"\ncompressing dense_1 at delta=15%: CR = {stream.compression_ratio:.2f}, "
      f"{stream.num_segments:,} segments")

comp = acc.run_model(spec, {"dense_1": effect}, mode="flit")
print(render_bars(latency_bars(comp),
                  title="\nper-layer latency breakdown (dense_1 compressed)"))

bl, cl = base.total_latency, comp.total_latency
be, ce = base.total_energy, comp.total_energy
print(f"\ninference latency: {bl.total:,} -> {cl.total:,} cycles "
      f"({1 - cl.total / bl.total:.1%} reduction)")
print(f"inference energy:  {be.total * 1e6:.2f} -> {ce.total * 1e6:.2f} uJ "
      f"({1 - ce.total / be.total:.1%} reduction)")
print("\nenergy by component (uJ, dynamic+leakage):")
for c in ("main_mem", "communication", "local_mem", "computation"):
    print(f"  {c:<14} {be.component_total(c) * 1e6:8.3f} -> "
          f"{ce.component_total(c) * 1e6:8.3f}")
