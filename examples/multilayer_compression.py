"""Multi-layer compression — the paper's future work, implemented.

Run:  python examples/multilayer_compression.py

The paper compresses one layer per network and notes (Sec. V) that
choosing a *set* of layers with per-layer tolerances would improve
results.  This example runs that optimizer on LeNet-5: for a range of
accuracy budgets it selects (layer, delta) assignments maximizing the
footprint saving, then compares against the single-layer policy.
"""

import numpy as np

from repro.core import compress_percent
from repro.core.multilayer import optimize_multilayer
from repro.datasets import train_test
from repro.nn import TrainConfig, evaluate, train
from repro.nn.zoo import lenet5

split = train_test("digits", 3000, 600, seed=7)
model = lenet5.proxy(np.random.default_rng(7))
print("training LeNet-5 proxy...")
train(model, split.x_train, split.y_train,
      TrainConfig(epochs=6, batch_size=64, lr=0.05))
print(f"baseline: {evaluate(model, split.x_test, split.y_test)}\n")

spec = lenet5.full()

print(f"{'budget':<8}{'assignments':<42}{'footprint':<11}{'drop'}")
for budget in (0.01, 0.03, 0.05, 0.10):
    plan = optimize_multilayer(
        model, spec, split.x_test, split.y_test, max_accuracy_drop=budget
    )
    assigns = ", ".join(f"{k}@{v:.0f}%" for k, v in plan.assignments.items()) or "-"
    print(f"{budget:<8.0%}{assigns:<42}{plan.footprint_reduction:<11.1%}"
          f"{plan.accuracy_drop:.4f}")

# reference: the paper's single-layer policy at delta = 15%
w = spec.materialize("dense_1").ravel()
stream = compress_percent(w, 15.0)
saving = stream.original_bytes - stream.compressed_bytes
print(f"\nsingle-layer reference (dense_1 @ 15%): "
      f"{saving / (spec.total_params * 4):.1%} footprint reduction")
