"""One weight stream, every registered codec.

Run:  python examples/codec_sweep.py

The codec registry puts the paper's line-fit compressor, the Sec. III-B
lossless baselines and int8 quantization behind one interface, so a
comparison is a loop over names.  On a high-entropy weight stream the
lossless baselines land at CR ~= 1 (RLE even expands it) while the
line-fit codec trades tolerance for real compression — the paper's
motivation, measured.
"""

import numpy as np

from repro.core import codec_names, get_codec

rng = np.random.default_rng(0)
weights = (rng.standard_normal(60_000) * 0.02).astype(np.float32)

print(f"stream: {weights.size:,} float32 weights ({weights.nbytes:,} bytes)\n")
print("codec                      CR    lossless   max|err|")
for name in codec_names():
    codec = get_codec(name, delta_pct=10.0)  # lossless codecs ignore the delta
    blob = codec.encode(weights)
    approx = codec.decode(blob)
    err = float(np.abs(approx.astype(np.float64) - weights).max())
    print(
        f"{name:<22} {blob.compression_ratio:8.3f}   "
        f"{'yes' if codec.lossless else ' no':>5}    {err:.2e}"
    )
    if codec.lossless:
        assert np.array_equal(approx, weights)

# Chains compose with "|": quantize to int8, then line-fit the int8
# value stream with the 6-byte int8 segment format (the Tab. III stack).
chain = get_codec("quantize-int8|linefit", delta_pct=5.0, fmt="int8")
blob = chain.encode(weights)
approx = chain.decode(blob)
print(
    f"\n{chain.name}: CR {blob.compression_ratio:.2f} on the int8 stream, "
    f"max|err| {np.abs(approx - weights).max():.2e} after dequantization"
)

# The blob's spec() is everything an archive stores to rebuild a decoder.
spec = blob.spec()
decoder = get_codec(spec["name"], **spec["params"])
from repro.core import CompressedBlob  # noqa: E402 - narrative ordering

restored = decoder.decode(CompressedBlob.rebuild(spec, blob.payload))
assert np.array_equal(restored, approx)
print("spec round-trip through get_codec(): ok")
