"""Quickstart: compress a weight stream, inspect it, decompress it.

Run:  python examples/quickstart.py

Covers the core API in ~40 lines: weak-monotonic compression at a
tolerance delta (Sec. III-B of the paper), the metrics of Tab. II, the
storage codec, and the hardware decompression-unit model (Fig. 6).
"""

import numpy as np

from repro.core import (
    DecompressionUnit,
    compress_percent,
)
from repro.core import codec

# A high-entropy "trained-weights-like" stream: the hard case that
# motivates the paper (Fig. 3: weights look like random data).
rng = np.random.default_rng(0)
weights = (rng.standard_normal(100_000) * 0.02).astype(np.float32)

print("delta    CR     segments   MSE        max|err|")
for delta_pct in (0, 5, 10, 15, 20):
    stream = compress_percent(weights, delta_pct)
    approx = stream.decompress()
    err = np.abs(approx - weights).max()
    print(
        f"{delta_pct:>4}%  {stream.compression_ratio:5.2f}  "
        f"{stream.num_segments:>9,}  {stream.mse(weights):.3e}  {err:.4f}"
    )

# Serialize for storage / NoC transport and read it back.
stream = compress_percent(weights, 15)
blob = codec.encode(stream)
print(f"\nwire format: {len(blob):,} bytes for {weights.nbytes:,} bytes of weights")
restored = codec.decode(blob)
assert np.array_equal(restored.decompress(), stream.decompress())

# The on-PE decompression unit: Eq. (2), accumulate-only datapath.
unit = DecompressionUnit()
cycles = unit.cycles(stream)
print(f"decompression: {cycles:,} cycles for {stream.num_weights:,} weights "
      f"({cycles / stream.num_weights:.3f} cycles/weight)")
hw_out = unit.emit(stream)
print(f"hw-exact vs line-evaluated max diff: "
      f"{np.abs(hw_out - stream.decompress()).max():.2e}")
